"""E16 (extension, §5 "Performance"): read/write dependency analysis.

Shape: the analysis recovers exactly the dependence edges a speculative
executor needs — the parallel schedule keeps all truly-independent
stages in the same generation, and unknown commands degrade safely to
barriers.
"""

import time

from conftest import emit

from repro.analysis.deps import analyze_dependencies

SCRIPT = """mkdir -p /report
grep ERROR /var/log/a.log >/report/a.txt
grep ERROR /var/log/b.log >/report/b.txt
grep WARN /var/log/a.log >/report/warn.txt
cat /report/a.txt
sort /var/log/c.log >/report/c.txt
"""


def test_schedule_shape():
    graph = analyze_dependencies(SCRIPT)
    stages = graph.stages()
    rows = ["stage " + str(i) + ": " + ", ".join(
        graph.effects[j].source for j in stage
    ) for i, stage in enumerate(stages)]
    emit("E16 (dependency schedule)", rows)
    # mkdir is a barrier; the three filters + sort run together; cat waits
    assert stages[0] == [0]
    assert set(stages[1]) >= {1, 2, 3, 5}
    assert 4 in stages[2]


def test_independence_count():
    graph = analyze_dependencies(SCRIPT)
    pairs = graph.independent_pairs()
    # the three greps and the sort are mutually independent: C(4,2)=6 pairs
    greps = {1, 2, 3, 5}
    grep_pairs = [p for p in pairs if set(p) <= greps]
    assert len(grep_pairs) == 6


def test_unknown_command_degrades_to_barrier():
    graph = analyze_dependencies("custom-tool\necho done >/log\n")
    assert graph.must_precede(0, 1)


def test_dependency_analysis_cost(benchmark):
    graph = benchmark(analyze_dependencies, SCRIPT)
    assert graph.dependencies


def test_scaling_with_commands():
    rows = []
    for n in [4, 16, 64]:
        lines = ["mkdir -p /out"]
        lines += [f"grep E /l/{i}.log >/out/{i}.txt" for i in range(n)]
        source = "\n".join(lines) + "\n"
        start = time.perf_counter()
        graph = analyze_dependencies(source)
        elapsed = time.perf_counter() - start
        rows.append(f"{n:3} commands: {elapsed*1e3:7.1f} ms, "
                    f"{len(graph.dependencies)} edges")
        # all greps parallel after mkdir
        assert len(graph.stages()) == 2
    emit("E16b (dependency analysis scaling)", rows)
