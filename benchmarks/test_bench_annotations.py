"""E17 (extension, §4 "Ergonomic annotations"): the value of annotations.

Shape: stripping `# @var` annotations from the corpus's annotated safe
scripts turns their analyses into (sound but noisy) warnings — the
annotation is exactly what converts "may be anything, including /" into
a proof of safety. Conversely, annotations never mask a true bug in the
buggy corpus.
"""

import re

from conftest import emit

from repro.analysis import analyze
from repro.analysis.corpus import corpus


def _strip_annotations(source: str) -> str:
    return "\n".join(
        line for line in source.splitlines() if not re.match(r"\s*#\s*@", line)
    ) + "\n"


def _flagged(report) -> bool:
    return bool(
        report.errors()
        or [d for d in report.warnings() if d.source in ("semantic", "types")]
    )


def test_annotations_prove_safety():
    annotated = [s for s in corpus() if "@var" in s.source and not s.buggy]
    assert annotated, "corpus must contain annotated safe scripts"
    rows = []
    converted = 0
    for script in annotated:
        with_ann = analyze(script.source, n_args=script.n_args)
        without = analyze(_strip_annotations(script.source), n_args=script.n_args)
        gained = _flagged(without) and not _flagged(with_ann)
        converted += gained
        rows.append(
            f"{script.name:24} annotated: {'clean' if not _flagged(with_ann) else 'flagged'}   "
            f"stripped: {'flagged' if _flagged(without) else 'clean'}"
        )
    emit(f"E17 (annotation ablation over {len(annotated)} safe scripts)", rows)
    # the annotations must be doing real work on most of these scripts
    assert converted >= len(annotated) - 1


def test_annotations_never_mask_bugs():
    buggy = [s for s in corpus() if s.buggy]
    for script in buggy:
        report = analyze(script.source, n_args=script.n_args)
        assert _flagged(report), script.name


def test_annotation_analysis_cost(benchmark):
    source = '# @var TARGET : /srv/[a-z]+/data\nrm -rf "$TARGET"\n'
    report = benchmark(analyze, source)
    assert not report.has("dangerous-deletion")
