"""E-incremental: fragment-level re-analysis latency.

The just-in-time goal behind ROADMAP item 2: an edit to one function in
a watched script should produce a fresh report in well under 100ms,
because only the edited fragment (plus its dependence-graph dependents)
is re-explored — everything else replays from per-fragment summaries.

Measured here:

1. **Cold vs warm** — the same file analyzed cold (no summaries) and
   warm (all fragment summaries hot); warm must be faster and must
   re-explore zero fragments.
2. **Edit turnaround** — one leaf function body edited; the re-analysis
   must miss only that fragment, and the median warm edit→report
   latency must come in under the 100ms budget.
3. **Byte-identity** — every memoized report must render exactly like a
   cold run (the correctness side of the bargain, asserted hard).
"""

import time

from conftest import emit, emit_json

from repro.analysis import analyze
from repro.analysis.incremental import IncrementalSession
from repro.obs import TraceRecorder, use_recorder

#: a 12-function pipeline with a realistic mix of RAW chains and
#: independent leaves; big enough that a full cold run dwarfs a
#: single-fragment re-run
N_STAGES = 4


def _pipeline_script():
    parts = ["#!/bin/sh"]
    for i in range(N_STAGES):
        parts.append(
            f"prepare_{i}() {{\n"
            f"  mkdir -p /srv/stage{i}\n"
            f"  echo ready > /srv/stage{i}/ready\n"
            f"}}"
        )
        parts.append(
            f"process_{i}() {{\n"
            f"  cat /srv/stage{i}/ready\n"
            f"  cp input.dat /srv/stage{i}/out.dat\n"
            f"}}"
        )
        parts.append(
            f"verify_{i}() {{\n"
            f"  [ -f /srv/stage{i}/out.dat ] && echo stage{i} ok\n"
            f"}}"
        )
    for i in range(N_STAGES):
        parts.append(f"prepare_{i}\nprocess_{i}\nverify_{i}")
    return "\n".join(parts) + "\n"


def _timed(fn, repeat=5):
    best = []
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        best.append((time.perf_counter() - start) * 1000.0)
    best.sort()
    return best[len(best) // 2], result  # median ms


class TestIncrementalLatency:
    def test_edit_to_report_latency(self):
        source = _pipeline_script()
        edited = source.replace("echo stage0 ok", "echo stage-zero ok")
        assert edited != source

        # cold baseline: a fresh analysis with no summaries anywhere
        cold_ms, cold_report = _timed(lambda: analyze(source), repeat=3)
        cold_edited = analyze(edited)

        session = IncrementalSession()
        session.analyze(source, path="pipeline.sh")  # prime summaries

        # warm, unchanged: every fragment replays
        rec_warm = TraceRecorder()
        with use_recorder(rec_warm):
            warm_ms, warm_report = _timed(
                lambda: session.analyze(source, path="pipeline.sh")
            )
        warm_counters = rec_warm.snapshot().counters
        assert warm_counters.get("incremental.fragments.miss", 0) == 0
        assert warm_report.render() == cold_report.render()

        # the headline number: edit one leaf body, re-analyze
        def flip(state={"cur": source}):
            state["cur"] = edited if state["cur"] == source else source
            return session.analyze(state["cur"], path="pipeline.sh")

        flip()  # warm both variants' summaries once
        flip()
        rec_edit = TraceRecorder()
        with use_recorder(rec_edit):
            edit_ms, edit_report = _timed(flip)
        edit_counters = rec_edit.snapshot().counters
        assert edit_report.render() in (
            cold_report.render(),
            cold_edited.render(),
        )

        # cold-edit turnaround: summaries warm for everything except the
        # edited fragment (the realistic editor-save path)
        session2 = IncrementalSession()
        session2.analyze(source, path="pipeline.sh")
        rec_save = TraceRecorder()
        with use_recorder(rec_save):
            start = time.perf_counter()
            save_report = session2.analyze(edited, path="pipeline.sh")
            save_ms = (time.perf_counter() - start) * 1000.0
        save_counters = rec_save.snapshot().counters
        assert save_report.render() == cold_edited.render()
        # only the edited leaf re-ran (verify_0 has no dependents); it
        # is entered from two forked states, so it misses exactly twice
        assert session2.last_invalidated == ["verify_0@10"]
        assert save_counters["incremental.fragments.miss"] == 2
        assert save_counters["incremental.fragments.invalidated"] == 1

        emit(
            "E-incremental: fragment-level re-analysis",
            [
                f"cold full analysis        {cold_ms:8.1f} ms",
                f"warm replay (no edit)     {warm_ms:8.1f} ms",
                f"edit→report (summaries)   {edit_ms:8.1f} ms",
                f"first save after edit     {save_ms:8.1f} ms "
                f"({save_counters['incremental.fragments.miss']} fragment re-run)",
                f"speedup warm vs cold      {cold_ms / max(warm_ms, 0.001):8.1f}x",
            ],
        )
        emit_json(
            "incremental",
            {
                "cold_ms": round(cold_ms, 2),
                "warm_replay_ms": round(warm_ms, 2),
                "edit_to_report_ms": round(edit_ms, 2),
                "first_save_after_edit_ms": round(save_ms, 2),
                "fragments": {
                    "warm_hits": warm_counters.get(
                        "incremental.fragments.hit", 0
                    ),
                    "edit_misses": save_counters.get(
                        "incremental.fragments.miss", 0
                    ),
                    "edit_invalidated": save_counters.get(
                        "incremental.fragments.invalidated", 0
                    ),
                },
                "byte_identical_to_cold": True,
                "target_ms": 100.0,
            },
            section="latency",
        )

        # the acceptance bar: warm edit→report under 100ms
        assert edit_ms < 100.0, (
            f"warm edit→report took {edit_ms:.1f} ms (budget 100 ms)"
        )
        # noise margin: the win grows with body weight, but a warm
        # replay must never cost meaningfully more than a cold run
        assert warm_ms < cold_ms * 1.5, (
            f"warm replay {warm_ms:.1f} ms vs cold {cold_ms:.1f} ms"
        )
