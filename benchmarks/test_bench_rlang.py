"""E14: regular-language engine microbenchmarks.

The paper's pitch for regular formalisms (§3) includes "computational
efficiency"; this bench quantifies the core operations on the type
library's realistic languages.
"""

import pytest
from conftest import emit

from repro.rlang import Regex

LSB = r"(Distributor ID|Description|Release|Codename):\t.*"
LONGLIST = r"[bcdlps-][rwxsStT-]{9}\+?\s+[0-9]+\s+\S+\s+\S+\s+[0-9]+\s+.*"
URL = r"(https?|ftp)://[^\s]+"
PATH = r"/?([^/\n]*/)*[^/\n]+"
HEX = r"0x[0-9a-f]+.*"


@pytest.mark.parametrize(
    "name,pattern",
    [("lsb", LSB), ("longlist", LONGLIST), ("url", URL), ("path", PATH)],
)
def test_compile_cost(benchmark, name, pattern):
    benchmark(Regex.compile, pattern)


def test_intersection_cost(benchmark):
    lsb = Regex.compile(LSB)
    desc = Regex.compile("desc.*")
    result = benchmark(lambda: (lsb & desc).is_empty())
    assert result


def test_containment_cost(benchmark):
    narrow = Regex.literal("0x") + Regex.compile("[0-9a-f]+")
    wide = Regex.compile(HEX)
    assert benchmark(lambda: narrow <= wide)


def test_complement_cost(benchmark):
    url = Regex.compile(URL)
    comp = benchmark(lambda: ~url)
    assert comp.matches("not a url")


def test_equivalence_cost(benchmark):
    a = Regex.compile("(a|b)*abb")
    b = Regex.compile("(b|a)*abb")
    assert benchmark(lambda: a == b)


def test_quotient_cost(benchmark):
    path = Regex.compile(PATH)
    from repro.shell.glob import glob_to_regex

    slash_star = glob_to_regex("/*")
    quotient = benchmark(lambda: path.strip_suffix(slash_star))
    assert quotient.matches("")


def test_minimisation_cost(benchmark):
    pattern = Regex.compile("(a|b)*a(a|b){4}")
    mdfa = benchmark(lambda: __import__("repro.rlang", fromlist=["minimise"]).minimise(pattern.dfa))
    assert mdfa.n_states <= pattern.dfa.n_states


def test_operation_size_table():
    rows = []
    for name, pattern in [("lsb", LSB), ("longlist", LONGLIST), ("url", URL), ("path", PATH), ("hex", HEX)]:
        regex = Regex.compile(pattern)
        rows.append(
            f"{name:9} dfa={regex.dfa.n_states:4} states  "
            f"min={regex.min_dfa.n_states:4} states  "
            f"atoms={len(regex.dfa.atoms):3}"
        )
    emit("E14 (automata sizes for library types)", rows)
