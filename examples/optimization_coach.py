#!/usr/bin/env python3
"""The optimization coach and fix synthesizer (paper §5).

Static information enables three §5 applications without changing how
anyone runs their scripts:

1. read/write dependency analysis → a safe parallel schedule (the
   information speculative/incremental executors like hS and Riker need);
2. ShellCheck-style *suggestions*, but semantics-driven and partially
   auto-applicable;
3. a synthesized dependency prologue guaranteeing the script's
   environment expectations before the first real command runs.

Run:  python examples/optimization_coach.py
"""

from repro.analysis.deps import analyze_dependencies
from repro.analysis.fixes import apply_fixes, suggest_fixes, synthesize_prologue
from repro.analysis.viz import behaviour_summary

SCRIPT = """mkdir /report
grep ERROR /var/log/app/a.log >/report/a.txt
grep ERROR /var/log/app/b.log >/report/b.txt
grep WARN /var/log/app/a.log >/report/warn.txt
wc -l /report/a.txt >/report/summary.txt
custom-uploader /report/summary.txt
"""


def main() -> None:
    print("== the script ==")
    print(SCRIPT)

    print("== 1. dependency analysis / parallel schedule ==")
    graph = analyze_dependencies(SCRIPT)
    print(graph.render())
    pairs = graph.independent_pairs()
    print(f"\n{len(pairs)} reorderable pair(s); the three greps can run "
          "concurrently once /report exists.")

    print("\n== 2. suggestions (auto-applied where mechanical) ==")
    fixes = suggest_fixes(SCRIPT)
    for fix in fixes:
        print("   " + str(fix))
    fixed = apply_fixes(SCRIPT, fixes)
    if fixed != SCRIPT:
        print("\nafter auto-fixes:")
        for line in fixed.splitlines():
            print("   " + line)

    print("\n== 3. synthesized dependency prologue ==")
    print(synthesize_prologue(SCRIPT).render())

    print("\n== 4. behaviour digest (comprehension, §5) ==")
    print(behaviour_summary(SCRIPT))


if __name__ == "__main__":
    main()
