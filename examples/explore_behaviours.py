#!/usr/bin/env python3
"""Interactive-style behaviour exploration (paper §5, "Comprehension").

Renders the full symbolic execution tree of the Steam updater bug: every
explored world with its path conditions, variable values, and findings —
the "what can this script do to my machine" view for developers who are
experts in domains outside computer science.

Run:  python examples/explore_behaviours.py
"""

from repro.analysis.viz import behaviour_summary, render_tree

SCRIPT = """#!/bin/sh
STEAMROOT="$(cd "${0%/*}" && echo $PWD)"
rm -fr "$STEAMROOT"/*
"""


def main() -> None:
    print("=== one-screen digest ===\n")
    print(behaviour_summary(SCRIPT))

    print("\n=== all execution worlds ===\n")
    print(render_tree(SCRIPT))

    print(
        "\nReading guide: world #1 is the famous bug — the `cd` failed, so\n"
        "the command substitution produced nothing, STEAMROOT is the empty\n"
        "string, and the final command is `rm -fr /*`."
    )


if __name__ == "__main__":
    main()
