#!/bin/sh
# Classic footgun: the shell truncates the output file before grep
# ever reads it, destroying the input.
grep -v '^#' config.txt > config.txt
