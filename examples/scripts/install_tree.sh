#!/bin/sh
# Idempotence: mkdir without -p fails on re-run.
mkdir /opt/app
mkdir /opt/app/bin
cp tool /opt/app/bin/tool
