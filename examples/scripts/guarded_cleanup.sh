#!/bin/sh
# The fixed variant (paper Fig. 2): the guard makes the deletion safe.
STEAMROOT="$(cd "${0%/*}" && echo $PWD)"
if [ "$(realpath "$STEAMROOT/")" != "/" ]; then
  rm -fr "$STEAMROOT"/*
else
  echo "Bad script path: $0"
  exit 1
fi
