#!/bin/sh
# A staged build pipeline: five functions with a real dependence chain
# (setup writes what build reads; build writes what test_stage reads),
# used by the incremental-analysis smoke test — editing one function
# body must re-analyze only that fragment plus its dependents.

setup() {
  mkdir -p /var/pipeline
  echo ready > /var/pipeline/ready
}

build() {
  cat /var/pipeline/ready
  cp source.tar /var/pipeline/build.out
}

test_stage() {
  [ -f /var/pipeline/build.out ] && echo "build ok"
}

cleanup() {
  rm -f /var/pipeline/ready
}

report() {
  echo "pipeline finished"
}

setup
build
test_stage
cleanup
report
