#!/bin/sh
# mktemp output is /tmp/-rooted, so this cleanup is provably scoped.
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT
date > "$tmp"
grep ':' "$tmp"
