#!/bin/sh
# The generator may still be running when the consumer reads its output.
./generate_report > report.txt &
grep ERROR report.txt
