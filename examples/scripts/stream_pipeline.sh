#!/bin/sh
# Pipeline-parallelism showcase: every stage lands in a distinct
# parallelizability class.  grep/sed/cut are stateless line maps
# (split anywhere, merge with cat); sort is commutative (merge with
# sort -m); wc -l is a commutative aggregator (merge by summation);
# head is blocking (depends on absolute stream position).
grep 'acct=' /var/log/audit.log | sed 's/^audit: //' | cut -d' ' -f2 | sort -u > /tmp/accounts.txt
grep -c 'denied' /var/log/audit.log > /tmp/denied.count
seq 1 100 | sed 's/$/ trial/' | head -10 > /tmp/trials.txt
