#!/bin/sh
# Parallelizable workload: three independent extraction passes feeding
# one aggregation.  repro-optimize proves the extractions share no
# RAW/WAR/WAW dependence and suggests running them under `&` with a
# `wait` barrier before the dependent aggregation step.
mkdir -p /srv/report
grep ERROR /var/log/web.log > /srv/report/web.txt
grep ERROR /var/log/db.log > /srv/report/db.txt
grep ERROR /var/log/queue.log > /srv/report/queue.txt
cat /srv/report/web.txt /srv/report/db.txt /srv/report/queue.txt | sort | uniq -c | sort -rn > /srv/report/summary.txt
