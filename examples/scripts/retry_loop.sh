#!/bin/sh
# Loop control: give up after the first successful attempt.
for host in a.example b.example c.example; do
  if curl -sf "https://$host/health"; then
    echo "healthy: $host"
    break
  fi
done
