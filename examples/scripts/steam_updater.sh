#!/bin/sh
# The motivating bug (paper Fig. 1): an empty expansion turns a scoped
# cleanup into `rm -fr /*`.
STEAMROOT="$(cd "${0%/*}" && echo $PWD)"
rm -fr "$STEAMROOT"/*
