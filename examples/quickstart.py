#!/usr/bin/env python3
"""Quickstart: analyze a shell script ahead of time.

Run:  python examples/quickstart.py
"""

from repro import analyze

# The core of the Steam-for-Linux updater bug (paper Fig. 1): when the
# command substitution fails, STEAMROOT is empty and the last line
# becomes `rm -fr /*`.
SCRIPT = """#!/bin/sh
STEAMROOT="$(cd "${0%/*}" && echo $PWD)"
# ... more lines ...
rm -fr "$STEAMROOT"/*
"""


def main() -> None:
    print("analyzing the Steam updater core...\n")
    report = analyze(SCRIPT)
    print(report.render())

    print("\nverdict:", "UNSAFE" if report.unsafe else "safe")
    assert report.has("dangerous-deletion")

    # The same API proves the guarded fix (paper Fig. 2) safe:
    fixed = """#!/bin/sh
STEAMROOT="$(cd "${0%/*}" && echo $PWD)"
if [ "$(realpath "$STEAMROOT/")" != "/" ]; then
  rm -fr "$STEAMROOT"/*
else
  echo "Bad script path: $0"; exit 1
fi
"""
    print("\nanalyzing the guarded fix...\n")
    fixed_report = analyze(fixed)
    print(fixed_report.render())
    assert not fixed_report.has("dangerous-deletion")
    print("\nthe guard is proven effective on every execution path.")


if __name__ == "__main__":
    main()
