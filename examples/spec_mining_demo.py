#!/usr/bin/env python3
"""Command specification inference (paper §3, Fig. 4).

Runs the full mining pipeline for `rm`:

  man page --> syntax DSL --> invocation sweep --> instrumented probing
           --> Hoare-triple specification

and cross-checks the result against the hand-written corpus spec and —
when coreutils are installed — against the real binary.

Run:  python examples/spec_mining_demo.py
"""

from repro.miner import (
    SubprocessProber,
    compare_specs,
    extract_syntax,
    generate_invocations,
    mine_command,
)
from repro.specs import default_registry


def main() -> None:
    name = "rm"

    print("1. documentation -> syntax DSL")
    syntax = extract_syntax(name)
    print(f"   {syntax.render()}")
    for char, flag in sorted(syntax.flags.items()):
        print(f"   -{char}: {flag.description[:60]}")

    print("\n2. invocation generation (guardrailed by the DSL)")
    invocations = generate_invocations(syntax)
    print(f"   {len(invocations)} valid probe configurations, e.g.:")
    for invocation in invocations[:6]:
        print(f"   {invocation.describe()}")

    print("\n3+4. instrumented probing -> specification compilation")
    spec = mine_command(name)
    for triple in spec.triples():
        print(f"   {triple}")

    print("\n5. validation against the hand-written corpus spec")
    reference = default_registry().get(name)
    combos = list(syntax.flag_combinations(max_flags=2))
    report = compare_specs(spec, reference, combos)
    print(f"   agreement: {report.agree}/{report.total} ({report.rate:.0%})")

    prober = SubprocessProber()
    if prober.available(name):
        print("\n6. re-mining against the REAL binary in a sandbox")
        real_spec = mine_command(name, prober=prober)
        real_report = compare_specs(real_spec, reference, combos)
        print(f"   agreement: {real_report.agree}/{real_report.total} "
              f"({real_report.rate:.0%})")
    else:
        print("\n6. (real rm binary not available; skipped)")


if __name__ == "__main__":
    main()
