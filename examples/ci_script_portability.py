#!/usr/bin/env python3
"""Platform-compatibility auditing (paper §5 "Correctness").

A script developed on Linux may break when a CI matrix adds macOS
runners: GNU-only flags like `sed -i` (no suffix), `readlink -f`, or
`date -d` silently fail there.  Given the deployment targets, the
analyzer warns before distribution.

Run:  python examples/ci_script_portability.py
"""

from repro.analysis import analyze

CI_SCRIPT = """#!/bin/sh
# release packaging helper
# @platforms linux macos
VERSION=$(date -d yesterday +%Y%m%d)
ROOT=$(readlink -f .)
sed -i "s/__VERSION__/$VERSION/" build/info.txt
tar_name="release-$VERSION.tar"
echo "packaged $tar_name at $ROOT"
"""

PORTABLE_SCRIPT = """#!/bin/sh
# @platforms linux macos
VERSION=$(date +%Y%m%d)
sed "s/__VERSION__/$VERSION/" build/info.txt > build/info.txt.new
mv build/info.txt.new build/info.txt
echo "packaged release-$VERSION.tar"
"""


def main() -> None:
    print("auditing a Linux-developed CI script for a linux+macos matrix:\n")
    report = analyze(CI_SCRIPT)
    for diagnostic in report.by_code("platform-flag"):
        print("   " + diagnostic.render())

    print("\nthe portable rewrite:\n")
    portable = analyze(PORTABLE_SCRIPT)
    flags = portable.by_code("platform-flag")
    print("   no portability warnings" if not flags else "\n".join(map(str, flags)))


if __name__ == "__main__":
    main()
