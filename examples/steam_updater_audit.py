#!/usr/bin/env python3
"""Audit every variant of the Steam updater story (paper §2-§3).

Walks the four figures of the paper plus the semantic-variant rewrites,
comparing the semantic analyzer's verdicts with the syntactic baseline
(a ShellCheck-class linter) on each.

Run:  python examples/steam_updater_audit.py
"""

from repro.analysis import analyze
from repro.lint import lint_codes

FIGURES = {
    "Fig. 1 (the bug)": (
        'STEAMROOT="$(cd "${0%/*}" && echo $PWD)"\nrm -fr "$STEAMROOT"/*\n',
        "buggy",
    ),
    "Fig. 2 (safe fix)": (
        'STEAMROOT="$(cd "${0%/*}" && echo $PWD)"\n'
        'if [ "$(realpath "$STEAMROOT/")" != "/" ]; then\n'
        '  rm -fr "$STEAMROOT"/*\nelse\n  echo "Bad script path: $0"; exit 1\nfi\n',
        "safe",
    ),
    "Fig. 3 (unsafe fix, one char away)": (
        'STEAMROOT="$(cd "${0%/*}" && echo $PWD)"\n'
        'if [ "$(realpath "$STEAMROOT/")" = "/" ]; then\n'
        '  rm -fr "$STEAMROOT"/*\nelse\n  echo "Bad script path: $0"; exit 1\nfi\n',
        "buggy",
    ),
    "Fig. 5 (subtle stream bug)": (
        'STEAMROOT="$(cd "${0%/*}" && echo $PWD)"/\n'
        "case $(lsb_release -a | grep '^desc' | cut -f 2) in\n"
        '  Debian) SUFFIX=".config/steam" ;;\n'
        '  *Linux) SUFFIX=".steam" ;;\n'
        "esac\n"
        "rm -fr $STEAMROOT$SUFFIX\n",
        "buggy",
    ),
    "§3 variant (split across variables)": (
        'STEAMROOT="$(cd "${0%/*}" && echo $PWD)"\nc="/*"\nrm -fr $STEAMROOT$c\n',
        "buggy",
    ),
}


def main() -> None:
    print(f"{'script':40} {'truth':6} {'semantic':10} {'baseline (codes)'}")
    print("-" * 92)
    for name, (source, truth) in FIGURES.items():
        report = analyze(source)
        semantic = "UNSAFE" if (
            report.errors()
            or any(d.source in ("semantic", "types") for d in report.warnings())
        ) else "safe"
        baseline = ",".join(lint_codes(source)) or "silent"
        print(f"{name:40} {truth:6} {semantic:10} {baseline}")

    print(
        "\nNote how the baseline cannot tell Fig. 2 from Fig. 3 (identical"
        "\ncodes on both) and says nothing useful about Fig. 5's grep typo,"
        "\nwhile the semantic analysis separates all of them correctly."
    )

    print("\ndetailed findings for Fig. 5:")
    report = analyze(FIGURES["Fig. 5 (subtle stream bug)"][0])
    for diagnostic in report.diagnostics:
        print("   ", diagnostic.render())


if __name__ == "__main__":
    main()
