#!/usr/bin/env python3
"""Regular types for pipelines, including polymorphism (paper §3-§4).

Demonstrates:
- the Fig. 5 dead-filter detection via language intersection;
- the §4 hex pipeline that only checks with polymorphic types;
- the named type library and `typeOf`-style introspection;
- fixpoint invariant inference for a feedback loop.

Run:  python examples/pipeline_typecheck.py
"""

from repro.rtypes import (
    StreamType,
    check_pipeline,
    identity,
    named_type,
    prefix_sig,
    ring_invariant,
    signature_for,
    simple,
)


def show_pipeline(title, argvs, **kwargs):
    print(f"\n== {title}")
    print("   " + " | ".join(" ".join(argv) for argv in argvs))
    result = check_pipeline(argvs, **kwargs)
    if not result.issues:
        print(f"   OK — output type admits e.g. {result.output.line.examples(3)}")
    for issue in result.issues:
        print(f"   [{issue.kind.name}] stage {issue.stage}: {issue.message}")
    return result


def main() -> None:
    print("command signatures (as inferred from concrete invocations):")
    for argv in [
        ["grep", "^desc"],
        ["grep", "-oE", "[0-9a-f]+"],
        ["sed", "s/^/0x/"],
        ["sort", "-g"],
        ["cut", "-f", "2"],
    ]:
        print(f"   {signature_for(argv)}")

    # Fig. 5: the intersection of lsb_release's output type with the
    # grep filter is the EMPTY language.
    show_pipeline(
        "Fig. 5 pipeline (dead filter)",
        [["lsb_release", "-a"], ["grep", "^desc"], ["cut", "-f", "2"]],
    )
    show_pipeline(
        "Fig. 5 corrected",
        [["lsb_release", "-a"], ["grep", "^Desc"], ["cut", "-f", "2"]],
    )

    # §4: polymorphic regular types.  With ∀α. α -> 0xα for sed, the
    # pipeline checks; with the simple type .* -> 0x.*, it cannot.
    show_pipeline(
        "hex pipeline with polymorphic sed type",
        [["grep", "-oE", "[0-9a-f]+"], ["sed", "s/^/0x/"], ["sort", "-g"]],
    )
    show_pipeline(
        "hex pipeline with SIMPLE sed type (loses information)",
        [["grep", "-oE", "[0-9a-f]+"], ["sed", "s/^/0x/"], ["sort", "-g"]],
        signatures=[None, simple(".*", "0x.*", label="sed (simple)"), None],
    )

    # named type library (§4 "ergonomic annotations")
    print("\nnamed types:")
    for name in ["any", "url", "longlist", "hexnum"]:
        print(f"   {name:10} :: {named_type(name).line.pattern}")

    # feedback loop (§4): iterative least-fixpoint invariant inference
    print("\nfeedback ring: cat | grep url | (back to cat)")
    result = ring_invariant(
        [
            ("cat", identity("cat")),
            ("prefix", prefix_sig("", "sed")),
        ],
        seed=StreamType.of(r"https?://[a-z.]+", "urls"),
    )
    print(
        f"   converged in {result.iterations} iterations; "
        f"invariant admits {result.type_of('cat').line.examples(2)}"
    )


if __name__ == "__main__":
    main()
