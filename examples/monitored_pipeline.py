#!/usr/bin/env python3
"""Runtime monitoring for untyped commands (paper §4).

When a pipeline stage has no static type, a monitor wraps it and checks
its output lines against the type the *next* stage expects — halting
execution before a violating line reaches the protected stage (the
gradual-typing trade-off: overhead and delayed detection in exchange
for safety without annotations).

Run:  python examples/monitored_pipeline.py
"""

from repro.monitor import MonitorViolation, StreamMonitor, run_pipeline
from repro.rtypes import StreamType, check_pipeline


def untyped_extractor(lines):
    """Stands in for an opaque third-party tool: extracts ids, but has a
    bug that occasionally emits a malformed record."""
    for lineno, line in enumerate(lines, start=1):
        if lineno == 4:
            yield f"OOPS<{line}>"  # the bug
        else:
            yield line.split(",", 1)[0]


def consumer(lines):
    """The protected downstream stage: requires numeric ids."""
    for line in lines:
        yield f"processed {int(line):06d}"


def main() -> None:
    # static analysis reports the gap first:
    result = check_pipeline([["cat", "records.csv"], ["extract-ids"], ["sort", "-n"]])
    for issue in result.untyped_stages():
        print(f"static: {issue.message}")

    records = [f"{1000 + i},payload-{i}" for i in range(8)]
    id_type = StreamType.of("[0-9]+", "numeric-id")

    print("\nwithout monitoring, the bad line reaches the consumer:")
    try:
        run_pipeline([untyped_extractor, consumer], records)
    except ValueError as exc:
        print(f"   runtime crash deep inside the consumer: {exc}")

    print("\nwith a monitor wrapped around the untyped stage:")
    monitor = StreamMonitor(id_type, where="extract-ids output")
    try:
        run_pipeline([untyped_extractor, monitor.filter, consumer], records)
    except MonitorViolation as violation:
        print(f"   halted at the boundary: {violation}")
        print(f"   lines checked before the halt: {monitor.stats.lines_checked}")

    print(
        "\nthe consumer never saw the malformed line; the failure is "
        "reported\nat the stage boundary, in terms of the violated type."
    )


if __name__ == "__main__":
    main()
