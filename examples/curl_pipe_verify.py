#!/usr/bin/env python3
"""The curl-to-sh scenario (paper §5 "Security").

A security-conscious user pipes an installer through `verify` before
`sh`::

    curl sw.com/up.sh | verify --no-RW ~/mine | sh

This example verifies three installers against that policy and shows
the three verdicts: ALLOW, REJECT, and NEEDS_GUARD (with generated
runtime guards).

Run:  python examples/curl_pipe_verify.py
"""

from repro.monitor import parse_policy, verify_script

INSTALLERS = {
    "well-behaved installer": """#!/bin/sh
mkdir -p /opt/sw
touch /opt/sw/installed
echo "installed to /opt/sw"
""",
    "greedy installer (touches ~/mine)": """#!/bin/sh
mkdir -p /opt/sw
rm -rf /home/user/mine/competitor-config
touch /opt/sw/installed
""",
    "argument-driven installer (unknowable statically)": """#!/bin/sh
rm -rf "$1"/previous-version
mkdir -p "$1"
""",
}


def main() -> None:
    policy = parse_policy(["--no-RW", "~/mine"])
    print(f"policy: {', '.join(str(rule) for rule in policy)}\n")

    for name, script in INSTALLERS.items():
        n_args = 1 if "$1" in script else 0
        result = verify_script(script, policy, n_args=n_args)
        print(f"== {name}")
        print("   " + result.render().replace("\n", "\n   "))
        print()

    print(
        "ALLOW scripts may be piped straight to sh; REJECT scripts should\n"
        "never run; NEEDS_GUARD scripts run with the generated runtime\n"
        "guards interposed, which abort before a protected path is touched."
    )


if __name__ == "__main__":
    main()
