"""Execute an advisor-suggested '&'-group rewrite in a sandboxed shell
and assert the transformation is semantics-preserving in practice: the
final filesystem state after the parallel rewrite is byte-identical to
the state the sequential original produces."""

import os
import shutil
import subprocess

import pytest

from repro.analysis.optimize import build_plan

SH = shutil.which("sh")

pytestmark = pytest.mark.skipif(SH is None, reason="no /bin/sh available")


TEMPLATE = """mkdir -p {root}/report
grep ERROR {root}/web.log > {root}/report/web.txt
grep ERROR {root}/db.log > {root}/report/db.txt
grep ERROR {root}/queue.log > {root}/report/queue.txt
cat {root}/report/web.txt {root}/report/db.txt {root}/report/queue.txt | sort | uniq -c > {root}/report/summary.txt
"""

LOGS = {
    "web.log": "INFO boot\nERROR disk full\nERROR timeout\nINFO done\n",
    "db.log": "ERROR deadlock\nWARN slow query\nERROR timeout\n",
    "queue.log": "INFO drain\nERROR backlog\n",
}


def _populate(root):
    os.makedirs(root)
    for name, body in LOGS.items():
        with open(os.path.join(root, name), "w") as handle:
            handle.write(body)


def _run(script, cwd):
    completed = subprocess.run(
        [SH, "-c", script], capture_output=True, text=True, timeout=20, cwd=cwd
    )
    assert completed.returncode == 0, completed.stderr
    return completed


def _tree(root):
    state = {}
    for dirpath, _, filenames in os.walk(root):
        for name in filenames:
            path = os.path.join(dirpath, name)
            with open(path, "rb") as handle:
                state[os.path.relpath(path, root)] = handle.read()
    return state


def test_and_group_rewrite_preserves_final_fs_state(tmp_path):
    root_a = str(tmp_path / "sequential")
    root_b = str(tmp_path / "parallel")

    # the advisor must find the three-way grep fan-out and emit a
    # verified rewrite for the sandbox-B copy of the script
    plan = build_plan(TEMPLATE.format(root=root_b))
    assert not plan.degraded
    assert plan.groups, plan.render()
    group = plan.groups[0]
    assert set(group.commands) == {1, 2, 3}
    assert group.verified
    assert plan.rewritten_script
    assert plan.rewritten_script.count("&\n") == 3
    assert "wait" in plan.rewritten_script

    _populate(root_a)
    _populate(root_b)
    _run(TEMPLATE.format(root=root_a), root_a)
    _run(plan.rewritten_script, root_b)

    state_a = _tree(root_a)
    state_b = _tree(root_b)
    assert set(state_a) == set(state_b)
    for name in state_a:
        assert state_a[name] == state_b[name], f"divergence in {name}"
    assert "report/summary.txt" in state_a
    assert state_a["report/summary.txt"]


def test_rewrite_of_dependent_script_is_refused_and_faithful(tmp_path):
    # a chain where each step reads the previous output: no '&'-groups,
    # and the plan must not fabricate a rewritten script
    root = str(tmp_path / "chain")
    script = (
        "mkdir -p {r}\n"
        "printf 'b\\na\\n' > {r}/one.txt\n"
        "sort {r}/one.txt > {r}/two.txt\n"
        "cat {r}/two.txt {r}/two.txt > {r}/three.txt\n"
    ).format(r=root)
    plan = build_plan(script)
    assert not plan.groups
    assert plan.rewritten_script is None
    _run(script, str(tmp_path))
    with open(os.path.join(root, "three.txt")) as handle:
        assert handle.read() == "a\nb\na\nb\n"
