"""Differential testing against a real POSIX shell.

For concrete inputs, the symbolic engine's results must agree with
/bin/sh: parameter expansion operators, test(1) outcomes, case
dispatch, and command substitution values.
"""

import shutil
import subprocess

import pytest

from repro.checkers import default_checkers
from repro.symex import Engine

SH = shutil.which("sh")

pytestmark = pytest.mark.skipif(SH is None, reason="no /bin/sh available")


def real_shell(script: str) -> str:
    completed = subprocess.run(
        [SH, "-c", script], capture_output=True, text=True, timeout=5
    )
    return completed.stdout


def real_shell_status(script: str) -> int:
    return subprocess.run(
        [SH, "-c", script], capture_output=True, timeout=5
    ).returncode


def engine_value(script: str, name: str = "OUT") -> set:
    engine = Engine(checkers=default_checkers())
    result = engine.run_script(script)
    values = set()
    for state in result.states:
        value = state.get_var(name)
        if value is not None:
            values.add(value.concrete_value())
    return values


class TestExpansionOperators:
    CASES = [
        ("a/b/c", "%", "/*"),
        ("a/b/c", "%%", "/*"),
        ("a/b/c", "#", "*/"),
        ("a/b/c", "##", "*/"),
        ("upd.sh", "%", "/*"),
        ("/upd.sh", "%", "/*"),
        ("archive.tar.gz", "%", ".*"),
        ("archive.tar.gz", "%%", ".*"),
        ("hello", "%", "l?"),
        ("hello", "#", "?e"),
        ("aaa", "%", "a"),
        ("aaa", "%%", "a*"),
        ("x", "%", "*"),
        ("", "%", "*"),
        ("dir/", "%", "/*"),
        ("a.b.c.d", "##", "*."),
    ]

    @pytest.mark.parametrize("value,op,pattern", CASES)
    def test_strip_agrees_with_sh(self, value, op, pattern):
        script = f'X=\'{value}\'\nOUT="${{X{op}{pattern}}}"\n'
        expected = real_shell(script + 'printf %s "$OUT"\n')
        assert engine_value(script) == {expected}

    DEFAULT_CASES = [
        ("", ":-", "fallback"),
        ("set", ":-", "fallback"),
        ("", "-", "fallback"),
        ("set", ":+", "alt"),
        ("", ":+", "alt"),
    ]

    @pytest.mark.parametrize("value,op,arg", DEFAULT_CASES)
    def test_defaults_agree_with_sh(self, value, op, arg):
        script = f'X=\'{value}\'\nOUT="${{X{op}{arg}}}"\n'
        expected = real_shell(script + 'printf %s "$OUT"\n')
        assert engine_value(script) == {expected}

    def test_assign_default(self):
        script = 'X=\nOUT="${X:=given}"\nSECOND="$X"\n'
        expected = real_shell(script + 'printf %s "$SECOND"\n')
        assert engine_value(script, "SECOND") == {expected}

    def test_length(self):
        script = "X=hello\nOUT=${#X}\n"
        expected = real_shell(script + 'printf %s "$OUT"\n')
        assert engine_value(script) == {expected}


class TestTestCommand:
    CASES = [
        '[ "a" = "a" ]',
        '[ "a" = "b" ]',
        '[ "a" != "b" ]',
        '[ -z "" ]',
        '[ -z "x" ]',
        '[ -n "x" ]',
        '[ -n "" ]',
        "[ 3 -gt 2 ]",
        "[ 2 -gt 3 ]",
        "[ 5 -le 5 ]",
        '[ "" ]',
        '[ "word" ]',
        '! [ "a" = "a" ]',
        "true",
        "false",
        "true && false",
        "true || false",
        "! true",
    ]

    @pytest.mark.parametrize("expr", CASES)
    def test_status_agrees_with_sh(self, expr):
        expected = real_shell_status(expr)
        engine = Engine(checkers=default_checkers())
        result = engine.run_script(expr)
        statuses = {s.status for s in result.states}
        assert statuses == {expected}, expr


class TestCaseDispatch:
    CASES = [
        ("hello", "h*", "other"),
        ("hello", "x*", "other"),
        ("a.txt", "*.txt", "*.log"),
        ("a.log", "*.txt", "*.log"),
        ("ab", "a?", "??"),
        ("", "*", "x"),
    ]

    @pytest.mark.parametrize("subject,pat1,pat2", CASES)
    def test_case_agrees_with_sh(self, subject, pat1, pat2):
        script = (
            f"X='{subject}'\n"
            f"case $X in {pat1}) OUT=first ;; {pat2}) OUT=second ;; *) OUT=neither ;; esac\n"
        )
        expected = real_shell(script + 'printf %s "$OUT"\n')
        assert engine_value(script) == {expected}


class TestCommandSubstitution:
    def test_echo_value(self):
        script = 'OUT="$(echo hello world)"\n'
        expected = real_shell(script + 'printf %s "$OUT"\n')
        assert engine_value(script) == {expected}

    def test_nested(self):
        script = 'OUT="$(echo "$(echo deep)")"\n'
        expected = real_shell(script + 'printf %s "$OUT"\n')
        assert engine_value(script) == {expected}

    def test_concatenation(self):
        script = 'A=x\nOUT="pre$(echo mid)post$A"\n'
        expected = real_shell(script + 'printf %s "$OUT"\n')
        assert engine_value(script) == {expected}

    def test_and_short_circuit_value(self):
        script = 'OUT="$(false && echo yes)"\n'
        expected = real_shell(script + 'printf %s "$OUT"\n')
        assert engine_value(script) == {expected}

    def test_or_rescue_value(self):
        script = 'OUT="$(false || echo rescued)"\n'
        expected = real_shell(script + 'printf %s "$OUT"\n')
        assert engine_value(script) == {expected}


class TestControlFlowValues:
    def test_if_chain(self):
        script = 'X=b\nif [ "$X" = "a" ]; then OUT=1; elif [ "$X" = "b" ]; then OUT=2; else OUT=3; fi\n'
        expected = real_shell(script + 'printf %s "$OUT"\n')
        assert engine_value(script) == {expected}

    def test_for_last_value(self):
        script = "for f in one two three; do OUT=$f; done\n"
        expected = real_shell(script + 'printf %s "$OUT"\n')
        # bounded unrolling keeps the first max_loop+1 items; use a
        # generous engine for exact agreement
        engine = Engine(checkers=default_checkers(), max_loop=8)
        result = engine.run_script(script)
        values = {
            s.get_var("OUT").concrete_value()
            for s in result.states
            if s.get_var("OUT") is not None
        }
        assert values == {expected}

    def test_function_value(self):
        script = "f() { OUT=$1; }\nf arg1\n"
        expected = real_shell(script + 'printf %s "$OUT"\n')
        assert engine_value(script) == {expected}
