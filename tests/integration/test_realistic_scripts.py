"""End-to-end analysis of realistic multi-construct scripts.

Each script mixes the constructs a real maintainer would use; the tests
assert the complete expected finding profile — both what must be found
and what must NOT be flagged (noise control).
"""

from repro.analysis import analyze
from repro.diag import Severity

INSTALLER = """#!/bin/sh
# A software installer in the curl-to-sh style.
# @args 1
PREFIX="${1:-/usr/local}"

if [ -e "$PREFIX/myapp" ]; then
  echo "already installed at $PREFIX/myapp"
  exit 0
fi

mkdir -p "$PREFIX/myapp/bin"
mkdir -p "$PREFIX/myapp/share"
touch "$PREFIX/myapp/share/manifest"
echo "installed" > "$PREFIX/myapp/share/state"
cat "$PREFIX/myapp/share/manifest"
"""

BACKUP = """#!/bin/sh
# Nightly backup rotation.
# @var BACKUP_ROOT : /var/backups/[a-z]+
rm -rf "$BACKUP_ROOT/oldest"
mv "$BACKUP_ROOT/daily" "$BACKUP_ROOT/oldest"
mkdir "$BACKUP_ROOT/daily"
touch "$BACKUP_ROOT/daily/.stamp"
"""

DANGEROUS_CLEANER = """#!/bin/sh
# A "cleanup" script with the classic mistake.
WORKDIR="$(cd "${0%/*}" && echo $PWD)"
cd "$WORKDIR"
rm -rf "$WORKDIR/"*
"""

RELEASE_PIPELINE = """#!/bin/sh
# Extract and sort commit ids from a changelog.
grep -oE '[0-9a-f]+' CHANGES.txt | sed 's/^/0x/' | sort -g | head -n 10
"""

BROKEN_RELEASE = """#!/bin/sh
# Same pipeline, but the sed was "simplified" and breaks typing.
grep -oE '[0-9a-f]+' CHANGES.txt | sed 's/^/id:/' | sort -g | head -n 10
"""

DEPLOY = """#!/bin/sh
# Deployment with functions and a case dispatch.
deploy() {
  mkdir -p "/srv/app/releases/$1"
  touch "/srv/app/releases/$1/done"
}

case "$1" in
  staging) deploy staging ;;
  prod)    deploy prod ;;
  *)       echo "usage: $0 staging|prod" >&2; exit 64 ;;
esac
"""


class TestInstaller:
    def test_no_errors(self):
        report = analyze(INSTALLER)
        assert not report.errors(), [d.render() for d in report.errors()]

    def test_idempotent_thanks_to_guard_and_p(self):
        report = analyze(INSTALLER)
        assert not report.has("idempotence")
        assert not report.has("always-fails")


class TestBackup:
    def test_no_dangerous_deletion_with_annotation(self):
        report = analyze(BACKUP)
        assert not report.has("dangerous-deletion")

    def test_mkdir_after_evacuating_mv_not_flagged(self):
        report = analyze(BACKUP)
        # the mv right before it evacuates "$BACKUP_ROOT/daily" on every
        # path, so re-running the rotation recreates it cleanly — the
        # guarded-creation analysis must see the absence and stay quiet
        assert not report.has("idempotence")

    def test_plain_mkdir_still_noted_without_evacuation(self):
        source = BACKUP.replace(
            'mv "$BACKUP_ROOT/daily" "$BACKUP_ROOT/oldest"\n', ""
        )
        report = analyze(source)
        # without the mv the path may already exist: re-running fails
        assert report.has("idempotence")

    def test_no_always_fails(self):
        report = analyze(BACKUP)
        assert not report.has("always-fails")


class TestDangerousCleaner:
    def test_flagged(self):
        report = analyze(DANGEROUS_CLEANER)
        assert report.has("dangerous-deletion")

    def test_witness_is_rooty(self):
        report = analyze(DANGEROUS_CLEANER)
        witnesses = [d.witness for d in report.by_code("dangerous-deletion")]
        assert any(w.startswith("/") for w in witnesses if w)


class TestReleasePipelines:
    def test_good_pipeline_clean(self):
        report = analyze(RELEASE_PIPELINE)
        assert not report.has("stream-type-error")
        assert not report.has("dead-stream")

    def test_broken_pipeline_flagged(self):
        report = analyze(BROKEN_RELEASE)
        assert report.has("stream-type-error")


class TestDeploy:
    def test_no_errors(self):
        report = analyze(DEPLOY, n_args=1)
        assert not report.errors(), [d.render() for d in report.errors()]

    def test_all_arms_live(self):
        report = analyze(DEPLOY, n_args=1)
        assert not report.has("dead-case-branch")

    def test_usage_path_exits_64(self):
        from repro.checkers import default_checkers
        from repro.symex import Engine

        result = Engine(checkers=default_checkers()).run_script(DEPLOY, n_args=1)
        assert 64 in {s.status for s in result.states}


class TestWholeCorpusSmoke:
    def test_every_corpus_script_analyzes(self):
        from repro.analysis.corpus import corpus

        for script in corpus():
            report = analyze(script.source, n_args=script.n_args)
            assert report is not None

    def test_examples_parse(self):
        """All shell snippets embedded in the examples must parse."""
        from repro.shell import parse

        parse(INSTALLER)
        parse(BACKUP)
        parse(DEPLOY)
