"""Unit tests for symbolic parameter-expansion operators."""

from repro.rlang import Regex
from repro.shell.glob import glob_to_regex
from repro.symstr import ConstraintStore, SymString, strip_prefix, strip_suffix

SLASH_STAR = glob_to_regex("/*")
PATH_RE = Regex.compile(r"/?([^/\n]*/)*[^/\n]+")


class TestConcreteSuffix:
    def test_smallest_suffix_strips_from_last_slash(self):
        s = SymString.lit("/home/jcarb/.steam/upd.sh")
        [case] = strip_suffix(s, SLASH_STAR, longest=False, store=ConstraintStore())
        assert case.result.concrete_value() == "/home/jcarb/.steam"

    def test_largest_suffix_strips_from_first_slash(self):
        s = SymString.lit("/home/jcarb/upd.sh")
        [case] = strip_suffix(s, SLASH_STAR, longest=True, store=ConstraintStore())
        assert case.result.concrete_value() == ""

    def test_no_match_unchanged(self):
        # The paper's failure mode: a path "lacking any directories".
        s = SymString.lit("upd.sh")
        [case] = strip_suffix(s, SLASH_STAR, longest=False, store=ConstraintStore())
        assert case.result.concrete_value() == "upd.sh"

    def test_single_leading_slash_yields_empty(self):
        s = SymString.lit("/upd.sh")
        [case] = strip_suffix(s, SLASH_STAR, longest=False, store=ConstraintStore())
        assert case.result.concrete_value() == ""

    def test_extension_strip(self):
        s = SymString.lit("archive.tar.gz")
        [case] = strip_suffix(s, glob_to_regex(".*"), longest=False, store=ConstraintStore())
        assert case.result.concrete_value() == "archive.tar"
        [case] = strip_suffix(s, glob_to_regex(".*"), longest=True, store=ConstraintStore())
        assert case.result.concrete_value() == "archive"


class TestConcretePrefix:
    def test_smallest_prefix(self):
        s = SymString.lit("/a/b/c")
        [case] = strip_prefix(s, glob_to_regex("*/"), longest=False, store=ConstraintStore())
        assert case.result.concrete_value() == "a/b/c"

    def test_largest_prefix(self):
        s = SymString.lit("/a/b/c")
        [case] = strip_prefix(s, glob_to_regex("*/"), longest=True, store=ConstraintStore())
        assert case.result.concrete_value() == "c"

    def test_no_match(self):
        s = SymString.lit("abc")
        [case] = strip_prefix(s, glob_to_regex("x*"), longest=False, store=ConstraintStore())
        assert case.result.concrete_value() == "abc"


class TestSymbolicSuffix:
    def test_two_cases_for_path_var(self):
        """${0%/*} on a path-constrained $0 splits exactly as in §3."""
        store = ConstraintStore()
        v0 = store.fresh(PATH_RE, label="$0")
        cases = strip_suffix(SymString.var(v0), SLASH_STAR, longest=False, store=store)
        assert len(cases) == 2
        by_note = {c.note: c for c in cases}
        no_match = by_note["suffix pattern did not match"]
        matched = by_note["suffix pattern matched"]

        # no-match: $0 is refined to slash-free names like "upd.sh"
        [(vid, refined)] = no_match.refinements
        assert vid == v0
        assert refined.matches("upd.sh")
        assert not refined.matches("/home/x/upd.sh")
        assert no_match.result.single_var() == v0

        # match: the result may be EMPTY — the Steam bug's root cause
        result_lang = matched.result.to_regex(store)
        assert result_lang.matches("")
        assert result_lang.matches("/home/jcarb/.steam")

    def test_match_case_tracks_provenance(self):
        store = ConstraintStore()
        v0 = store.fresh(PATH_RE, label="$0")
        cases = strip_suffix(SymString.var(v0), SLASH_STAR, longest=False, store=store)
        matched = next(c for c in cases if "matched" in c.note and "not" not in c.note)
        rvid = matched.result.single_var()
        assert store.provenance(rvid) == ("strip_suffix", v0)

    def test_impossible_case_omitted(self):
        store = ConstraintStore()
        v = store.fresh(Regex.compile("[a-z]+"), label="X")  # never contains '/'
        cases = strip_suffix(SymString.var(v), SLASH_STAR, longest=False, store=store)
        assert len(cases) == 1
        assert cases[0].note == "suffix pattern did not match"

    def test_always_matching_case_omits_no_match(self):
        store = ConstraintStore()
        v = store.fresh(Regex.compile("/[a-z]*"), label="X")  # always starts with '/'
        cases = strip_suffix(SymString.var(v), SLASH_STAR, longest=False, store=store)
        assert len(cases) == 1
        assert "matched" in cases[0].note

    def test_mixed_value_overapproximates(self):
        store = ConstraintStore()
        v = store.fresh(Regex.compile("[a-z]+"), label="X")
        value = SymString.lit("dir/") + SymString.var(v)
        cases = strip_suffix(value, SLASH_STAR, longest=False, store=store)
        assert len(cases) == 1
        lang = cases[0].result.to_regex(store)
        assert lang.matches("dir")  # suffix "/abc" stripped


class TestSymbolicPrefix:
    def test_prefix_cases(self):
        store = ConstraintStore()
        v = store.fresh(Regex.compile("(https?://)?[a-z.]+"), label="url")
        cases = strip_prefix(
            SymString.var(v), glob_to_regex("http*://"), longest=False, store=store
        )
        notes = {c.note for c in cases}
        assert "prefix pattern matched" in notes
        assert "prefix pattern did not match" in notes
        matched = next(c for c in cases if c.note == "prefix pattern matched")
        lang = matched.result.to_regex(store)
        assert lang.matches("example.com")
