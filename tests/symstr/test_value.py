"""Unit tests for symbolic strings and the constraint store."""

from repro.rlang import Regex
from repro.symstr import ConstraintStore, LitAtom, SymString, VarAtom


class TestConstruction:
    def test_lit(self):
        s = SymString.lit("abc")
        assert s.is_concrete()
        assert s.concrete_value() == "abc"

    def test_empty_lit_has_no_atoms(self):
        assert SymString.lit("").atoms == ()
        assert SymString.lit("").concrete_value() == ""

    def test_var(self):
        store = ConstraintStore()
        v = store.fresh(label="X")
        s = SymString.var(v)
        assert not s.is_concrete()
        assert s.concrete_value() is None
        assert s.variables() == [v]
        assert s.single_var() == v

    def test_concat_merges_literals(self):
        s = SymString.lit("a") + SymString.lit("b")
        assert s.atoms == (LitAtom("ab"),)

    def test_concat_mixed(self):
        store = ConstraintStore()
        v = store.fresh()
        s = SymString.lit("pre") + SymString.var(v) + SymString.lit("post")
        assert len(s.atoms) == 3
        assert s.single_var() is None

    def test_empty_literal_dropped_in_concat(self):
        store = ConstraintStore()
        v = store.fresh()
        s = SymString.lit("") + SymString.var(v)
        assert s.atoms == (VarAtom(v),)


class TestSemantics:
    def test_to_regex_concrete(self):
        store = ConstraintStore()
        assert SymString.lit("hi").to_regex(store).matches("hi")
        assert not SymString.lit("hi").to_regex(store).matches("ho")

    def test_to_regex_with_constraint(self):
        store = ConstraintStore()
        v = store.fresh(Regex.compile("[0-9]+"))
        s = SymString.lit("n=") + SymString.var(v)
        lang = s.to_regex(store)
        assert lang.matches("n=42")
        assert not lang.matches("n=x")

    def test_could_equal(self):
        store = ConstraintStore()
        v = store.fresh(Regex.compile("a*"))
        assert SymString.var(v).could_equal("aaa", store)
        assert SymString.var(v).could_equal("", store)
        assert not SymString.var(v).could_equal("b", store)

    def test_could_be_empty(self):
        store = ConstraintStore()
        maybe = store.fresh(Regex.compile("(x+)?"))
        never = store.fresh(Regex.compile("x+"))
        assert SymString.var(maybe).could_be_empty(store)
        assert not SymString.var(never).could_be_empty(store)

    def test_must_equal(self):
        store = ConstraintStore()
        assert SymString.lit("x").must_equal("x", store)
        assert not SymString.lit("x").must_equal("y", store)
        pinned = store.fresh(Regex.literal("only"))
        assert SymString.var(pinned).must_equal("only", store)

    def test_could_and_must_match(self):
        store = ConstraintStore()
        v = store.fresh(Regex.compile("[0-9]+"))
        digits = Regex.compile(r"\d+")
        letters = Regex.compile("[a-z]+")
        s = SymString.var(v)
        assert s.could_match(digits, store)
        assert s.must_match(digits, store)
        assert not s.could_match(letters, store)

    def test_describe(self):
        store = ConstraintStore()
        v = store.fresh(label="$HOME")
        s = SymString.var(v) + SymString.lit("/.steam")
        assert store.label(v) in s.describe(store)
        assert "/.steam" in s.describe(store)


class TestStore:
    def test_refine_narrows(self):
        store = ConstraintStore()
        v = store.fresh(Regex.compile("[a-z]+"))
        store.refine(v, Regex.compile(".*oo.*"))
        assert SymString.var(v).could_equal("foo", store)
        assert not SymString.var(v).could_equal("bar", store)

    def test_refine_to_empty_is_infeasible(self):
        store = ConstraintStore()
        v = store.fresh(Regex.compile("[a-z]+"))
        store.refine(v, Regex.compile("[0-9]+"))
        assert not store.is_feasible(v)

    def test_exclude(self):
        store = ConstraintStore()
        v = store.fresh(Regex.compile("a|b"))
        store.exclude(v, Regex.literal("a"))
        assert not SymString.var(v).could_equal("a", store)
        assert SymString.var(v).could_equal("b", store)

    def test_fork_isolation(self):
        store = ConstraintStore()
        v = store.fresh(Regex.compile("a|b"))
        forked = store.fork()
        forked.refine(v, Regex.literal("a"))
        assert SymString.var(v).could_equal("b", store)
        assert not SymString.var(v).could_equal("b", forked)

    def test_provenance(self):
        store = ConstraintStore()
        base = store.fresh(label="X")
        derived = store.fresh(provenance=("strip_suffix", base))
        assert store.provenance(derived) == ("strip_suffix", base)
        assert store.provenance(base) is None

    def test_default_constraint_is_any(self):
        store = ConstraintStore()
        v = store.fresh()
        assert SymString.var(v).could_equal("anything\nat all", store)
