"""Oracle classification: FP/FN bucketing, metamorphic normalization."""

from types import SimpleNamespace

import pytest

from repro.analysis.analyzer import analyze
from repro.analysis.difftest.dynamic import (
    DynamicResult,
    _check_deletion,
    _check_idempotence,
    _check_streams,
    check_source as check_dynamic,
)
from repro.analysis.difftest.metamorphic import (
    check_source as check_metamorphic,
    normalize_report,
)
from repro.analysis.difftest.sandbox import RunResult, TraceRecord
from repro.diag import Diagnostic, Severity


def _run(trace=(), returncode=0, before=None, after=None):
    return RunResult(
        returncode=returncode,
        stdout="",
        stderr="",
        timed_out=False,
        before=before or {},
        after=after if after is not None else dict(before or {}),
        trace=list(trace),
    )


def _record(name, status, args=()):
    return TraceRecord(name=name, status=status, cwd="/box", args=tuple(args))


def _diag(code, message="msg", always=False):
    return Diagnostic(code=code, message=message, always=always)


class TestIdempotenceClassification:
    def test_clean_reruns_with_warning_is_fp(self):
        result = DynamicResult("mkdir d\n", True)
        first = _run([_record("mkdir", 0, ["d"])])
        second = _run([_record("mkdir", 0, ["d"])])
        _check_idempotence(result, [_diag("idempotence")], first, second)
        assert [d.kind for d in result.disagreements] == ["fp"]
        assert "cleanly" in result.disagreements[0].detail

    def test_second_run_failure_with_warning_agrees(self):
        result = DynamicResult("mkdir d\n", True)
        first = _run([_record("mkdir", 0, ["d"])])
        second = _run([_record("mkdir", 1, ["d"])])
        _check_idempotence(result, [_diag("idempotence")], first, second)
        assert result.disagreements == []

    def test_second_run_failure_without_warning_is_fn(self):
        result = DynamicResult("mkdir d\n", True)
        first = _run([_record("mkdir", 0, ["d"])])
        second = _run([_record("mkdir", 1, ["d"])])
        _check_idempotence(result, [], first, second)
        assert [d.kind for d in result.disagreements] == ["fn"]
        assert "mkdir d" in result.disagreements[0].detail

    def test_failure_on_both_runs_is_not_a_violation(self):
        # a creator that fails identically on run 1 and run 2 never
        # succeeded-then-failed, so silence from the checker is correct
        result = DynamicResult("ln x y\n", True)
        first = _run([_record("ln", 1, ["x", "y"])])
        second = _run([_record("ln", 1, ["x", "y"])])
        _check_idempotence(result, [], first, second)
        assert result.disagreements == []

    def test_failure_on_both_runs_with_warning_is_fp_upper_bound(self):
        result = DynamicResult("ln x y\n", True)
        first = _run([_record("ln", 1, ["x", "y"])])
        second = _run([_record("ln", 1, ["x", "y"])])
        _check_idempotence(result, [_diag("idempotence")], first, second)
        assert [d.kind for d in result.disagreements] == ["fp"]
        assert "first" in result.disagreements[0].detail

    def test_always_checked_marker_recorded(self):
        result = DynamicResult("true\n", True)
        _check_idempotence(result, [], _run(), _run())
        assert result.checked == ["idempotence"]


class TestDeletionClassification:
    def test_always_claim_refuted_by_confined_completion(self):
        result = DynamicResult("rm x\n", True)
        diags = [_diag("dangerous-deletion", always=True)]
        first = _run(returncode=0, before={"x": ("file", b"")}, after={})
        _check_deletion(result, diags, first)
        assert [d.kind for d in result.disagreements] == ["fp"]

    def test_may_claims_not_falsified(self):
        result = DynamicResult("rm $1\n", True)
        diags = [_diag("dangerous-deletion", always=False)]
        _check_deletion(result, diags, _run(returncode=0))
        assert result.disagreements == []
        assert result.checked == []  # may-findings are out of scope

    def test_failing_run_does_not_refute(self):
        result = DynamicResult("rm /\n", True)
        diags = [_diag("dangerous-deletion", always=True)]
        _check_deletion(result, diags, _run(returncode=125))
        assert result.disagreements == []


class TestStreamsClassification:
    def test_unchanged_nonempty_input_refutes_always_clobber(self):
        result = DynamicResult("sort f > f\n", True)
        diags = [
            _diag("redirect-clobbers-input", "truncates 'f' msg", always=True)
        ]
        state = {"f": ("file", b"data")}
        first = _run(before=state, after=dict(state))
        _check_streams(result, diags, first)
        assert [d.kind for d in result.disagreements] == ["fp"]

    def test_truncated_input_confirms_clobber(self):
        result = DynamicResult("sort f > f\n", True)
        diags = [
            _diag("redirect-clobbers-input", "truncates 'f' msg", always=True)
        ]
        first = _run(
            before={"f": ("file", b"data")}, after={"f": ("file", b"")}
        )
        _check_streams(result, diags, first)
        assert result.disagreements == []


class TestDynamicEndToEnd:
    def test_unguarded_mkdir_static_and_dynamic_agree(self, tmp_path):
        result = check_dynamic("mkdir cache\n", str(tmp_path), "t1")
        assert result.executed
        assert result.disagreements == []

    def test_guarded_mkdir_clean_both_ways(self, tmp_path):
        source = "[ -d cache ] || mkdir cache\n"
        result = check_dynamic(source, str(tmp_path), "t2")
        assert result.executed
        assert result.disagreements == []

    def test_warning_on_untaken_path_counts_as_fp_upper_bound(self, tmp_path):
        # static (rightly) warns about the mkdir on the taken branch of an
        # unknown guard; dynamically the branch never executes — this is
        # exactly the single-path upper-bound FP the benchmark documents
        source = "if [ -e absent.flag ]; then\nmkdir work\nfi\n"
        result = check_dynamic(source, str(tmp_path), "t3")
        assert result.executed
        kinds = [(d.checker, d.kind) for d in result.disagreements]
        assert kinds == [("idempotence", "fp")]

    def test_unparsable_script_skipped(self, tmp_path):
        result = check_dynamic("if then fi ((\n", str(tmp_path), "t4")
        assert not result.executed
        assert result.skipped_reason


class TestNormalizeReport:
    def _report(self, *diags):
        return SimpleNamespace(diagnostics=list(diags))

    def test_positions_in_messages_masked(self):
        report = self._report(
            _diag("race-write-write", "conflicts with write at 3:7")
        )
        (entry,) = normalize_report(report)
        assert "3:7" not in entry[1]
        assert "L:C" in entry[1]

    def test_quotes_stripped_only_on_request(self):
        report = self._report(_diag("dead-stream", 'output of `echo "x"` unused'))
        (kept,) = normalize_report(report, strip_quotes=False)
        (stripped,) = normalize_report(report, strip_quotes=True)
        assert '"' in kept[1]
        assert '"' not in stripped[1]

    def test_severity_and_always_preserved(self):
        report = self._report(
            Diagnostic(
                code="x", message="m", severity=Severity.ERROR, always=True
            )
        )
        (entry,) = normalize_report(report)
        assert entry[2] == "ERROR"
        assert entry[3] is True


class TestMetamorphic:
    def test_examples_style_script_is_clean(self):
        source = 'x=file.txt\nif [ -f "$x" ]; then\ncat "$x"\nfi\n'
        result = check_metamorphic(source)
        assert result.clean
        assert "roundtrip" in result.rewrites_applied

    def test_order_sensitive_analyzer_caught(self):
        # an analyze() whose diagnostics depend on the surface newline
        # structure must produce a diff under the newline rewrite
        def broken_analyze(source, **kwargs):
            report = analyze(source, **kwargs)
            if ";" in source:
                report.diagnostics.append(_diag("bogus", "semicolons!"))
            return report

        result = check_metamorphic("echo a; echo b\n", analyze_fn=broken_analyze)
        assert not result.clean
        assert {d.rewrite for d in result.diffs} <= {"newlines", "brace-group",
                                                     "roundtrip", "quotes"}

    def test_unanalyzable_source_is_identity(self):
        def exploding(source, **kwargs):
            raise RuntimeError("boom")

        result = check_metamorphic("echo hi\n", analyze_fn=exploding)
        assert result.clean
        assert result.rewrites_applied == []
