"""Campaign aggregation, minimization, baselines, and determinism."""

import json

import pytest

from repro.analysis.difftest.campaign import (
    CampaignConfig,
    compare_to_baseline,
    run_campaign,
)
from repro.analysis.difftest.gen import generate
from repro.analysis.difftest.minimize import minimize_lines
from repro.analysis.difftest.sandbox import Sandbox


class TestMinimizeLines:
    def test_reduces_to_the_single_relevant_line(self):
        source = "setup\nnoise one\nMAGIC\nnoise two\n"
        result = minimize_lines(source, lambda s: "MAGIC" in s)
        assert result == "MAGIC\n"

    def test_keeps_jointly_required_lines(self):
        source = "alpha\nfiller\nbeta\nmore filler\n"
        predicate = lambda s: "alpha" in s and "beta" in s
        result = minimize_lines(source, predicate)
        assert result == "alpha\nbeta\n"

    def test_non_holding_predicate_returns_source(self):
        source = "a\nb\n"
        assert minimize_lines(source, lambda s: False) == source

    def test_exploding_predicate_counts_as_non_holding(self):
        source = "keep\nBOOM\n"

        def predicate(candidate):
            if "BOOM" not in candidate:
                raise RuntimeError("probe crashed")
            return True

        assert minimize_lines(source, predicate) == "BOOM\n"

    def test_probe_budget_respected(self):
        calls = []

        def predicate(candidate):
            calls.append(candidate)
            return True

        minimize_lines("\n".join(f"l{i}" for i in range(100)), predicate,
                       max_probes=10)
        # initial check + at most max_probes probes
        assert len(calls) <= 11

    def test_deterministic(self):
        source = "\n".join(f"line {i}" for i in range(20)) + "\nMAGIC\n"
        first = minimize_lines(source, lambda s: "MAGIC" in s)
        second = minimize_lines(source, lambda s: "MAGIC" in s)
        assert first == second == "MAGIC\n"


class TestCompareToBaseline:
    BENCH = {
        "checkers": {"deletion": {"checked": 5, "fp": 1, "fn": 0}},
        "metamorphic": {"total_diffs": 0},
    }

    def test_equal_counts_pass(self):
        baseline = {
            "checkers": {"deletion": {"fp": 1, "fn": 0}},
            "metamorphic": {"total_diffs": 0},
        }
        assert compare_to_baseline(self.BENCH, baseline) == []

    def test_improvement_passes(self):
        baseline = {
            "checkers": {"deletion": {"fp": 3, "fn": 1}},
            "metamorphic": {"total_diffs": 2},
        }
        assert compare_to_baseline(self.BENCH, baseline) == []

    def test_fp_regression_reported(self):
        baseline = {
            "checkers": {"deletion": {"fp": 0, "fn": 0}},
            "metamorphic": {"total_diffs": 0},
        }
        problems = compare_to_baseline(self.BENCH, baseline)
        assert any("deletion" in p and "fp" in p for p in problems)

    def test_metamorphic_regression_reported(self):
        bench = {
            "checkers": {},
            "metamorphic": {"total_diffs": 3},
        }
        problems = compare_to_baseline(bench, {"metamorphic": {"total_diffs": 0}})
        assert any("metamorphic" in p for p in problems)

    def test_unknown_checker_defaults_to_zero_budget(self):
        bench = {
            "checkers": {"newone": {"checked": 1, "fp": 1, "fn": 0}},
            "metamorphic": {"total_diffs": 0},
        }
        assert compare_to_baseline(bench, {"checkers": {}}) != []


class TestCampaignDeterminism:
    CONFIG = CampaignConfig(
        seeds=(0, 2, 4),
        exec_enabled=False,
        minimize=False,
    )

    def test_same_config_same_bytes(self, tmp_path):
        first = run_campaign(self.CONFIG, base_dir=str(tmp_path / "a"), jobs=1)
        second = run_campaign(self.CONFIG, base_dir=str(tmp_path / "b"), jobs=1)
        assert first.to_json() == second.to_json()

    def test_jobs_do_not_change_output(self, tmp_path):
        serial = run_campaign(self.CONFIG, base_dir=str(tmp_path / "s"), jobs=1)
        parallel = run_campaign(self.CONFIG, base_dir=str(tmp_path / "p"), jobs=4)
        assert serial.to_json() == parallel.to_json()

    def test_bench_document_shape(self, tmp_path):
        result = run_campaign(self.CONFIG, base_dir=str(tmp_path), jobs=1)
        bench = json.loads(result.to_json())
        assert set(bench) == {
            "checkers", "config", "disagreements", "metamorphic", "scripts",
        }
        assert bench["scripts"]["total"] == 3
        assert bench["config"]["seeds"] == [0, 2, 4]
        for counts in bench["checkers"].values():
            assert set(counts) == {"checked", "fn", "fp"}

    def test_no_host_paths_leak_into_bench(self, tmp_path):
        base = tmp_path / "leakcheck"
        result = run_campaign(self.CONFIG, base_dir=str(base), jobs=1)
        assert str(base) not in result.to_json()


class TestCampaignExecution:
    def test_small_exec_campaign_runs(self, tmp_path):
        config = CampaignConfig(
            seeds=(0,), meta_enabled=False, minimize=False
        )
        result = run_campaign(config, base_dir=str(tmp_path), jobs=1)
        assert len(result.outcomes) == 1
        assert result.outcomes[0].executed

    def test_corpus_files_included(self, tmp_path):
        script = tmp_path / "corp.sh"
        script.write_text("echo hello\n")
        config = CampaignConfig(
            seeds=(),
            corpus=(str(script),),
            exec_enabled=False,
            minimize=False,
        )
        result = run_campaign(config, base_dir=str(tmp_path / "b"), jobs=1)
        assert [o.label for o in result.outcomes] == ["corpus-corp.sh"]


class TestRewriteValidity:
    """Semantics preservation of the metamorphic rewrites, checked
    against real execution: the rewritten script must produce the same
    tree diff and exit status as the original."""

    @pytest.mark.parametrize("seed", [0, 2, 4])
    @pytest.mark.parametrize(
        "rewrite", ["roundtrip", "newlines", "quotes", "brace-group"]
    )
    def test_rewrite_preserves_execution(self, tmp_path, seed, rewrite):
        from repro.shell.rewrite import REWRITES

        source = generate(seed, safe=True)
        rewritten = REWRITES[rewrite](source)

        original_box = Sandbox(str(tmp_path / "orig"))
        original_box.populate()
        original = original_box.run(source)
        rewritten_box = Sandbox(str(tmp_path / "rewr"))
        rewritten_box.populate()
        other = rewritten_box.run(rewritten)

        assert not original.timed_out and not other.timed_out
        assert original.returncode == other.returncode
        assert original.diff == other.diff
        assert original.stdout == other.stdout
