"""Sandbox plumbing: tree snapshots/diffs, shim traces, confinement."""

import os

import pytest

from repro.analysis.difftest.sandbox import (
    Sandbox,
    snapshot_tree,
    tree_diff,
)


class TestSnapshotTree:
    def test_captures_files_with_bytes(self, tmp_path):
        (tmp_path / "a.txt").write_text("hello")
        state = snapshot_tree(str(tmp_path))
        assert state["a.txt"] == ("file", b"hello")

    def test_captures_empty_directories(self, tmp_path):
        (tmp_path / "empty").mkdir()
        state = snapshot_tree(str(tmp_path))
        assert state["empty"] == ("dir", None)

    def test_captures_nested_paths(self, tmp_path):
        (tmp_path / "d").mkdir()
        (tmp_path / "d" / "inner.txt").write_text("x")
        state = snapshot_tree(str(tmp_path))
        assert state["d"] == ("dir", None)
        assert state["d/inner.txt"] == ("file", b"x")

    def test_symlink_recorded_not_followed(self, tmp_path):
        (tmp_path / "real.txt").write_text("payload")
        os.symlink("real.txt", tmp_path / "link.txt")
        state = snapshot_tree(str(tmp_path))
        assert state["link.txt"] == ("symlink", b"real.txt")
        assert state["real.txt"] == ("file", b"payload")

    def test_dangling_symlink_captured(self, tmp_path):
        os.symlink("nowhere", tmp_path / "dangling")
        state = snapshot_tree(str(tmp_path))
        assert state["dangling"] == ("symlink", b"nowhere")

    def test_symlinked_directory_not_descended(self, tmp_path):
        (tmp_path / "target").mkdir()
        (tmp_path / "target" / "deep.txt").write_text("x")
        os.symlink("target", tmp_path / "alias")
        state = snapshot_tree(str(tmp_path))
        assert state["alias"] == ("symlink", b"target")
        assert "alias/deep.txt" not in state

    def test_control_files_excluded(self, tmp_path):
        (tmp_path / ".trace").write_text("noise")
        (tmp_path / ".shims").mkdir()
        (tmp_path / ".shims" / "rm").write_text("#!/bin/sh")
        (tmp_path / "script.sh").write_text("echo hi")
        (tmp_path / "kept.txt").write_text("yes")
        state = snapshot_tree(str(tmp_path))
        assert set(state) == {"kept.txt"}


class TestTreeDiff:
    def test_created_deleted_modified(self):
        before = {"a": ("file", b"1"), "b": ("file", b"2")}
        after = {"b": ("file", b"3"), "c": ("file", b"4")}
        assert tree_diff(before, after) == {
            "a": "deleted",
            "b": "modified",
            "c": "created",
        }

    def test_kind_change_is_modified(self):
        before = {"x": ("file", b"")}
        after = {"x": ("dir", None)}
        assert tree_diff(before, after) == {"x": "modified"}

    def test_symlink_retarget_is_modified(self):
        before = {"l": ("symlink", b"old")}
        after = {"l": ("symlink", b"new")}
        assert tree_diff(before, after) == {"l": "modified"}

    def test_empty_dir_deletion_observed(self):
        before = {"empty": ("dir", None)}
        assert tree_diff(before, {}) == {"empty": "deleted"}

    def test_identical_trees_diff_empty(self):
        state = {"a": ("file", b"1"), "d": ("dir", None)}
        assert tree_diff(state, dict(state)) == {}


class TestSandboxRun:
    def test_observes_creation_and_trace(self, tmp_path):
        sandbox = Sandbox(str(tmp_path / "box"))
        sandbox.populate()
        result = sandbox.run("mkdir cache\necho done > cache/marker\n", args=[])
        assert result.returncode == 0
        assert result.diff.get("cache") == "created"
        assert result.diff.get("cache/marker") == "created"
        mkdirs = [r for r in result.trace if r.name == "mkdir"]
        assert mkdirs and mkdirs[0].status == 0
        assert mkdirs[0].args == ("cache",)

    def test_trace_preserves_spaced_args(self, tmp_path):
        sandbox = Sandbox(str(tmp_path / "box"))
        sandbox.populate()
        result = sandbox.run("cat 'a b'\n", args=[])
        cats = [r for r in result.trace if r.name == "cat"]
        assert cats and cats[0].args == ("a b",)

    def test_off_allowlist_command_fails_127(self, tmp_path):
        sandbox = Sandbox(str(tmp_path / "box"))
        sandbox.populate()
        result = sandbox.run("frobnicate\n", args=[])
        assert result.returncode == 127

    def test_absolute_path_operand_refused(self, tmp_path):
        victim = tmp_path / "outside.txt"
        victim.write_text("precious")
        sandbox = Sandbox(str(tmp_path / "box"))
        sandbox.populate()
        result = sandbox.run(f"rm -f {victim}\n", args=[])
        assert victim.read_text() == "precious"
        refused = [r for r in result.trace if r.status == 125]
        assert refused and refused[0].name == "rm"

    def test_dotdot_escape_refused(self, tmp_path):
        victim = tmp_path / "outside.txt"
        victim.write_text("precious")
        sandbox = Sandbox(str(tmp_path / "box"))
        sandbox.populate()
        result = sandbox.run("rm -f ../outside.txt\n", args=[])
        assert victim.read_text() == "precious"
        assert any(r.status == 125 for r in result.trace)

    def test_sandbox_relative_paths_allowed(self, tmp_path):
        sandbox = Sandbox(str(tmp_path / "box"))
        sandbox.populate()
        result = sandbox.run("rm file.txt\n", args=[])
        assert result.returncode == 0
        assert result.diff.get("file.txt") == "deleted"

    def test_dev_null_redirection_allowed(self, tmp_path):
        sandbox = Sandbox(str(tmp_path / "box"))
        sandbox.populate()
        result = sandbox.run("grep alpha /dev/null\n", args=[])
        # grep finds nothing (exit 1) but the shim must not refuse
        assert not any(r.status == 125 for r in result.trace)

    def test_second_run_gets_fresh_trace(self, tmp_path):
        # builtins (echo, test) never reach the shims — use a real binary
        sandbox = Sandbox(str(tmp_path / "box"))
        sandbox.populate()
        sandbox.run("cat file.txt\n", args=[])
        result = sandbox.run("cat data\n", args=[])
        cats = [r for r in result.trace if r.name == "cat"]
        assert len(cats) == 1
        assert cats[0].args == ("data",)

    def test_timeout_reported(self, tmp_path):
        sandbox = Sandbox(str(tmp_path / "box"))
        sandbox.populate()
        source = "while true; do true; done\n"
        result = sandbox.run(source, args=[], timeout=1.0)
        assert result.timed_out
