"""Unit tests for the symbolic file system."""

import pytest

from repro.fs import (
    Existence,
    FileSystem,
    FsContradiction,
    FsOp,
    NodeKind,
    SymPath,
    normalise_concrete,
    parse_sympath,
)
from repro.rlang import Regex
from repro.symstr import ConstraintStore, SymString


def path_of(text: str) -> SymPath:
    parsed = parse_sympath(SymString.lit(text))
    assert parsed is not None
    return parsed


class TestNormalise:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("/a/b/c", "/a/b/c"),
            ("/a//b", "/a/b"),
            ("/a/./b", "/a/b"),
            ("/a/../b", "/b"),
            ("/..", "/"),
            ("/", "/"),
            ("a/b/..", "a"),
            ("a/..", "."),
            ("..", ".."),
            ("../../x", "../../x"),
            ("", "."),
            ("/a/b/../../..", "/"),
        ],
    )
    def test_normalise(self, raw, expected):
        assert normalise_concrete(raw) == expected


class TestParseSympath:
    def test_absolute(self):
        p = path_of("/home/user/file")
        assert p.absolute
        assert p.components == ("home", "user", "file")

    def test_relative(self):
        p = path_of("docs/readme")
        assert not p.absolute
        assert p.components == ("docs", "readme")

    def test_sym_rooted(self):
        store = ConstraintStore()
        v = store.fresh(label="$1")
        p = parse_sympath(SymString.var(v) + SymString.lit("/config"))
        assert p.sym_rooted
        assert len(p.components) == 2
        assert p.components[1] == "config"

    def test_fused_segment_unparseable(self):
        store = ConstraintStore()
        v = store.fresh()
        assert parse_sympath(SymString.lit("pre") + SymString.var(v)) is None
        assert parse_sympath(SymString.var(v) + SymString.var(v)) is None

    def test_dotdot_normalised(self):
        assert path_of("/a/b/../c").components == ("a", "c")

    def test_root(self):
        p = path_of("/")
        assert p.absolute and p.components == ()

    def test_trailing_slash(self):
        assert path_of("/a/b/").components == ("a", "b")


class TestResolution:
    def test_same_path_same_node(self):
        fs = FileSystem()
        a = fs.resolve(path_of("/opt/steam"))
        b = fs.resolve(path_of("/opt/steam"))
        assert a == b

    def test_normalised_aliases_share_node(self):
        fs = FileSystem()
        a = fs.resolve(path_of("/opt/steam"))
        b = fs.resolve(path_of("/opt//./steam"))
        c = fs.resolve(path_of("/opt/x/../steam"))
        assert a == b == c

    def test_sym_root_identity(self):
        store = ConstraintStore()
        v = store.fresh(label="$1")
        fs = FileSystem()
        a = fs.resolve(parse_sympath(SymString.var(v)))
        b = fs.resolve(parse_sympath(SymString.var(v) + SymString.lit("/x")))
        assert fs.nodes[b].parent == a

    def test_relative_uses_cwd(self):
        fs = FileSystem()
        home = fs.resolve(path_of("/home/me"))
        child = fs.resolve(path_of("notes.txt"), cwd=home)
        assert fs.nodes[child].parent == home

    def test_no_create(self):
        fs = FileSystem()
        assert fs.resolve(path_of("/nothing/here"), create=False) is None

    def test_path_of_roundtrip(self):
        fs = FileSystem()
        node = fs.resolve(path_of("/a/b/c"))
        assert fs.path_of(node) == "/a/b/c"


class TestFacts:
    def test_assume_exists(self):
        fs = FileSystem()
        node = fs.resolve(path_of("/etc/passwd"))
        fs.assume_exists(node, NodeKind.FILE)
        assert fs.existence(node) is Existence.EXISTS
        assert fs.kind(node) is NodeKind.FILE
        parent = fs.resolve(path_of("/etc"))
        assert fs.existence(parent) is Existence.EXISTS
        assert fs.kind(parent) is NodeKind.DIR

    def test_assume_exists_after_delete_contradicts(self):
        fs = FileSystem()
        node = fs.resolve(path_of("/data"))
        fs.assume_exists(node, NodeKind.DIR)
        fs.delete(node, recursive=True)
        with pytest.raises(FsContradiction):
            fs.assume_exists(node)

    def test_child_of_deleted_dir_contradicts(self):
        # §4's snippet: rm -fr $1; cat $1/config
        store = ConstraintStore()
        v = store.fresh(label="$1")
        fs = FileSystem()
        target = fs.resolve(parse_sympath(SymString.var(v)))
        fs.assume_exists(target)
        fs.delete(target, recursive=True)
        config = fs.resolve(parse_sympath(SymString.var(v) + SymString.lit("/config")))
        with pytest.raises(FsContradiction):
            fs.read_file(config)

    def test_kind_conflict(self):
        fs = FileSystem()
        node = fs.resolve(path_of("/thing"))
        fs.assume_exists(node, NodeKind.DIR)
        with pytest.raises(FsContradiction):
            fs.assume_exists(node, NodeKind.FILE)

    def test_file_used_as_directory(self):
        fs = FileSystem()
        f = fs.resolve(path_of("/etc/passwd"))
        fs.assume_exists(f, NodeKind.FILE)
        sub = fs.resolve(path_of("/etc/passwd/sub"))
        with pytest.raises(FsContradiction):
            fs.assume_exists(sub)

    def test_assume_absent_conflict(self):
        fs = FileSystem()
        node = fs.resolve(path_of("/x"))
        fs.assume_exists(node)
        with pytest.raises(FsContradiction):
            fs.assume_absent(node)


class TestMutations:
    def test_create_file(self):
        fs = FileSystem()
        node = fs.resolve(path_of("/tmp/out"))
        fs.assume_exists(fs.resolve(path_of("/tmp")), NodeKind.DIR)
        fs.create(node, NodeKind.FILE)
        assert fs.existence(node) is Existence.EXISTS

    def test_create_under_absent_parent_fails(self):
        fs = FileSystem()
        parent = fs.resolve(path_of("/gone"))
        fs.assume_exists(parent)
        fs.delete(parent)
        child = fs.resolve(path_of("/gone/file"))
        with pytest.raises(FsContradiction):
            fs.create(child, NodeKind.FILE)

    def test_mkdir_p_creates_parents(self):
        fs = FileSystem()
        node = fs.resolve(path_of("/a/b/c"))
        fs.create(node, NodeKind.DIR, ensure_parents=True)
        assert fs.existence(fs.resolve(path_of("/a/b"))) is Existence.EXISTS

    def test_recursive_delete_marks_subtree(self):
        fs = FileSystem()
        top = fs.resolve(path_of("/data"))
        leaf = fs.resolve(path_of("/data/sub/file"))
        fs.assume_exists(leaf, NodeKind.FILE)
        fs.delete(top, recursive=True)
        assert fs.existence(leaf) is Existence.ABSENT

    def test_write_directory_fails(self):
        fs = FileSystem()
        d = fs.resolve(path_of("/dir"))
        fs.assume_exists(d, NodeKind.DIR)
        with pytest.raises(FsContradiction):
            fs.write_file(d)

    def test_recreate_after_delete(self):
        fs = FileSystem()
        node = fs.resolve(path_of("/tmp/f"))
        fs.assume_exists(node, NodeKind.FILE)
        fs.delete(node)
        fs.create(node, NodeKind.FILE)  # parent /tmp still exists
        assert fs.existence(node) is Existence.EXISTS


class TestForkAndLog:
    def test_fork_isolation(self):
        fs = FileSystem()
        node = fs.resolve(path_of("/shared"))
        fs.assume_exists(node)
        forked = fs.fork()
        forked.delete(node)
        assert fs.existence(node) is Existence.EXISTS
        assert forked.existence(node) is Existence.ABSENT

    def test_event_log_records(self):
        fs = FileSystem()
        node = fs.resolve(path_of("/f"))
        fs.assume_exists(node, NodeKind.FILE)
        fs.read_file(node)
        fs.delete(node)
        ops = [e.op for e in fs.log]
        assert FsOp.READ in ops and FsOp.DELETE in ops

    def test_reads_writes_split(self):
        fs = FileSystem()
        node = fs.resolve(path_of("/f"))
        fs.write_file(node)
        assert fs.log.writes()
