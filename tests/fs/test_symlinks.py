"""Unit tests for symlink aliasing (§4 "path aliasing")."""

import pytest

from repro.checkers import default_checkers
from repro.fs import Existence, FileSystem, FsContradiction, NodeKind, parse_sympath
from repro.symex import Engine
from repro.symstr import SymString


def path_of(text):
    return parse_sympath(SymString.lit(text))


class TestFsSymlinks:
    def test_make_symlink(self):
        fs = FileSystem()
        real = fs.resolve(path_of("/data/real"))
        fs.assume_exists(real, NodeKind.DIR)
        alias = fs.resolve(path_of("/tmp/alias"))
        fs.make_symlink(alias, real)
        assert fs.kind(alias) is NodeKind.SYMLINK

    def test_resolution_through_symlink(self):
        fs = FileSystem()
        real = fs.resolve(path_of("/data/real"))
        fs.assume_exists(real, NodeKind.DIR)
        alias = fs.resolve(path_of("/tmp/alias"))
        fs.make_symlink(alias, real)
        via_alias = fs.resolve(path_of("/tmp/alias/file"))
        via_real = fs.resolve(path_of("/data/real/file"))
        assert via_alias == via_real

    def test_resolve_final_follows_terminal_link(self):
        fs = FileSystem()
        real = fs.resolve(path_of("/data/real"))
        fs.assume_exists(real, NodeKind.DIR)
        alias = fs.resolve(path_of("/tmp/alias"))
        fs.make_symlink(alias, real)
        assert fs.resolve_final(path_of("/tmp/alias")) == real
        assert fs.resolve(path_of("/tmp/alias")) == alias

    def test_chain_of_links(self):
        fs = FileSystem()
        real = fs.resolve(path_of("/a"))
        fs.assume_exists(real, NodeKind.DIR)
        l1 = fs.resolve(path_of("/l1"))
        fs.make_symlink(l1, real)
        l2 = fs.resolve(path_of("/l2"))
        fs.make_symlink(l2, l1)
        assert fs.resolve(path_of("/l2/x")) == fs.resolve(path_of("/a/x"))

    def test_cycle_is_bounded(self):
        fs = FileSystem()
        a = fs.resolve(path_of("/a"))
        b = fs.resolve(path_of("/b"))
        fs.make_symlink(a, b)
        fs.make_symlink(b, a)
        # must terminate (no recursion blow-up)
        fs.resolve(path_of("/a/deep"))

    def test_delete_via_alias_contradicts_real(self):
        fs = FileSystem()
        real = fs.resolve(path_of("/data/real"))
        fs.assume_exists(real, NodeKind.DIR)
        alias = fs.resolve(path_of("/tmp/alias"))
        fs.make_symlink(alias, real)
        fs.delete(fs.resolve(path_of("/tmp/alias/store")), recursive=True)
        with pytest.raises(FsContradiction):
            fs.read_file(fs.resolve(path_of("/data/real/store/config")))


class TestEngineSymlinks:
    def test_ln_s_creates_alias(self):
        source = (
            "mkdir -p /data/real\n"
            "ln -s /data/real /tmp/alias\n"
            "rm -rf /tmp/alias/store\n"
            "cat /data/real/store/config\n"
        )
        result = Engine(checkers=default_checkers()).run_script(source)
        assert result.has("always-fails")

    def test_independent_paths_fine(self):
        source = (
            "ln -s /data/real /tmp/alias\n"
            "rm -rf /tmp/alias/store\n"
            "cat /data/other/config\n"
        )
        result = Engine(checkers=default_checkers()).run_script(source)
        assert not result.has("always-fails")

    def test_dangling_symlink_allowed(self):
        source = "ln -s /nonexistent /tmp/link\n"
        result = Engine(checkers=default_checkers()).run_script(source)
        assert not result.has("always-fails")
