"""EventLog: O(1) forking, provenance stamping, and region markers."""

from repro.fs import EventLog, FsEvent, FsOp, Origin


def filled(n, prefix="/f"):
    log = EventLog()
    for idx in range(n):
        log.record(FsOp.WRITE, f"{prefix}{idx}", idx)
    return log


class TestForking:
    def test_fork_shares_prefix_structurally(self):
        log = filled(5)
        child = log.fork()
        assert child._head is log._head  # same sealed segment chain
        assert child._tail == [] and log._tail == []

    def test_fork_isolation(self):
        log = filled(3)
        child = log.fork()
        log.record(FsOp.READ, "/parent-only", None)
        child.record(FsOp.READ, "/child-only", None)
        assert [e.path for e in log][-1] == "/parent-only"
        assert [e.path for e in child][-1] == "/child-only"
        assert len(log) == 4 and len(child) == 4

    def test_fork_of_fork(self):
        log = filled(2)
        a = log.fork()
        a.record(FsOp.READ, "/a", None)
        b = a.fork()
        b.record(FsOp.READ, "/b", None)
        assert [e.path for e in b] == ["/f0", "/f1", "/a", "/b"]
        assert [e.path for e in a] == ["/f0", "/f1", "/a"]

    def test_fork_copies_origin_and_task(self):
        log = EventLog()
        log.set_origin(Origin(label="cmd"))
        log.task = 7
        child = log.fork()
        assert child.origin.label == "cmd"
        assert child.task == 7


class TestViews:
    def test_len_and_iter_across_segments(self):
        log = filled(4)
        log.fork()  # seals
        log.record(FsOp.READ, "/late", None)
        assert len(log) == 5
        assert [e.path for e in log] == ["/f0", "/f1", "/f2", "/f3", "/late"]
        assert log.events == list(log)

    def test_since_spans_segment_boundaries(self):
        log = filled(3)
        log.fork()
        log.record(FsOp.READ, "/a", None)
        log.fork()
        log.record(FsOp.READ, "/b", None)
        assert [e.path for e in log.since(2)] == ["/f2", "/a", "/b"]
        assert [e.path for e in log.since(0)] == [e.path for e in log]
        assert log.since(len(log)) == []

    def test_reads_writes_exclude_markers(self):
        log = EventLog()
        log.open_region(1, label="bg")
        log.record(FsOp.WRITE, "/w", 1)
        log.record(FsOp.READ, "/r", 2)
        log.close_region(1)
        assert [e.path for e in log.writes()] == ["/w"]
        assert [e.path for e in log.reads()] == ["/r"]


class TestProvenance:
    def test_record_stamps_origin_and_task(self):
        log = EventLog()
        origin = Origin(label="grep x f")
        log.set_origin(origin)
        log.task = 3
        log.record(FsOp.READ, "/f", 9, "contents")
        [event] = list(log)
        assert event.origin is origin
        assert event.task == 3

    def test_region_markers(self):
        log = EventLog()
        log.open_region(2, label="cmd >f", origin=Origin(label="cmd >f"))
        log.close_region(2, label="cmd >f")
        opened, closed = list(log)
        assert opened.op is FsOp.BG_OPEN and opened.region == 2
        assert closed.op is FsOp.BG_CLOSE and closed.region == 2
        assert opened.op.is_marker and closed.op.is_marker
        assert not FsOp.WRITE.is_marker

    def test_origin_describe(self):
        assert Origin(label="cmd").describe() == "`cmd`"
        assert "1:2" in Origin(label="cmd", pos="1:2").describe()
