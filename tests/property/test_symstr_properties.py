"""Property tests for symbolic strings: concrete parameter-expansion
operators agree with a brute-force oracle, and concatenation respects
language semantics."""

from hypothesis import given, settings, strategies as st

from repro.rlang import Regex
from repro.shell.glob import glob_to_regex
from repro.symstr import ConstraintStore, SymString, strip_prefix, strip_suffix

values = st.text(alphabet="ab/.x", max_size=8)
glob_patterns = st.lists(
    st.sampled_from(["a", "b", "/", ".", "*", "?"]), min_size=1, max_size=4
).map("".join)


def oracle_suffix(text, pattern, longest):
    """POSIX ${text%pattern} computed by definition."""
    regex = glob_to_regex(pattern)
    candidates = [
        idx for idx in range(len(text) + 1) if regex.matches(text[idx:])
    ]
    if not candidates:
        return text
    idx = min(candidates) if longest else max(candidates)
    return text[:idx]


def oracle_prefix(text, pattern, longest):
    regex = glob_to_regex(pattern)
    candidates = [
        idx for idx in range(len(text) + 1) if regex.matches(text[:idx])
    ]
    if not candidates:
        return text
    idx = max(candidates) if longest else min(candidates)
    return text[idx:]


class TestConcreteStrips:
    @given(values, glob_patterns, st.booleans())
    @settings(max_examples=300, deadline=None)
    def test_suffix_strip_matches_oracle(self, text, pattern, longest):
        store = ConstraintStore()
        [case] = strip_suffix(
            SymString.lit(text), glob_to_regex(pattern), longest, store
        )
        assert case.result.concrete_value() == oracle_suffix(text, pattern, longest)

    @given(values, glob_patterns, st.booleans())
    @settings(max_examples=300, deadline=None)
    def test_prefix_strip_matches_oracle(self, text, pattern, longest):
        store = ConstraintStore()
        [case] = strip_prefix(
            SymString.lit(text), glob_to_regex(pattern), longest, store
        )
        assert case.result.concrete_value() == oracle_prefix(text, pattern, longest)


class TestSymbolicStripSoundness:
    """The symbolic cases must over-approximate the concrete results:
    for any concrete value in the variable's language, the oracle result
    is in some case's result language."""

    @given(values, glob_patterns)
    @settings(max_examples=120, deadline=None)
    def test_symbolic_suffix_covers_concrete(self, text, pattern):
        store = ConstraintStore()
        # a variable whose language is exactly {text}
        vid = store.fresh(Regex.literal(text), label="v")
        cases = strip_suffix(
            SymString.var(vid), glob_to_regex(pattern), False, store
        )
        expected = oracle_suffix(text, pattern, False)
        covered = any(
            case.result.to_regex(store).matches(expected) for case in cases
        )
        assert covered, (text, pattern, expected)

    @given(values, glob_patterns)
    @settings(max_examples=120, deadline=None)
    def test_symbolic_prefix_covers_concrete(self, text, pattern):
        store = ConstraintStore()
        vid = store.fresh(Regex.literal(text), label="v")
        cases = strip_prefix(
            SymString.var(vid), glob_to_regex(pattern), False, store
        )
        expected = oracle_prefix(text, pattern, False)
        covered = any(
            case.result.to_regex(store).matches(expected) for case in cases
        )
        assert covered, (text, pattern, expected)


class TestConcatSemantics:
    @given(values, values)
    @settings(max_examples=150, deadline=None)
    def test_concat_of_literals(self, left, right):
        store = ConstraintStore()
        combined = SymString.lit(left) + SymString.lit(right)
        assert combined.concrete_value() == left + right
        assert combined.to_regex(store).matches(left + right)

    @given(values, values, values)
    @settings(max_examples=80, deadline=None)
    def test_concat_associative(self, a, b, c):
        lhs = (SymString.lit(a) + SymString.lit(b)) + SymString.lit(c)
        rhs = SymString.lit(a) + (SymString.lit(b) + SymString.lit(c))
        assert lhs == rhs

    @given(values)
    @settings(max_examples=60, deadline=None)
    def test_var_concat_language(self, text):
        store = ConstraintStore()
        vid = store.fresh(Regex.compile("[ab]*"), label="v")
        combined = SymString.lit(text) + SymString.var(vid)
        assert combined.to_regex(store).matches(text + "ab")
        assert combined.to_regex(store).matches(text)
