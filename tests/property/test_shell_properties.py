"""Property tests for the shell front end: parser round trips and path
normalisation vs the standard library."""

import posixpath

from hypothesis import assume, given, settings, strategies as st

from repro.fs import normalise_concrete
from repro.shell import parse
from repro.shell.ast import structure
from repro.shell.printer import render

# -- path normalisation ------------------------------------------------------

segments = st.sampled_from(["a", "bb", ".", "..", "x9", ".hidden"])
paths = st.builds(
    lambda absolute, parts, trailing: (
        ("/" if absolute else "") + "/".join(parts) + ("/" if trailing and parts else "")
    ),
    st.booleans(),
    st.lists(segments, min_size=0, max_size=6),
    st.booleans(),
)


class TestNormalisation:
    @given(paths)
    @settings(max_examples=400, deadline=None)
    def test_matches_posixpath_normpath(self, path):
        # posixpath preserves a leading double slash (POSIX allows an
        # implementation-defined meaning); we collapse it — skip that case
        assume(not path.startswith("//"))
        expected = posixpath.normpath(path) if path else "."
        assert normalise_concrete(path) == expected

    @given(paths)
    @settings(max_examples=200, deadline=None)
    def test_idempotent(self, path):
        once = normalise_concrete(path)
        assert normalise_concrete(once) == once


# -- parser round trips ---------------------------------------------------------

words = st.sampled_from(
    ["foo", "bar", "'a b'", '"x y"', "$VAR", '"$VAR"', "${X:-d}", "a.txt",
     "*.log", "$(echo hi)", "-f", "/tmp/x"]
)

simple_commands = st.lists(words, min_size=1, max_size=4).map(" ".join)


def _combine(sources, template):
    return template.format(*sources)


scripts = st.recursive(
    simple_commands,
    lambda inner: st.one_of(
        st.tuples(inner, inner).map(lambda t: f"{t[0]} && {t[1]}"),
        st.tuples(inner, inner).map(lambda t: f"{t[0]} || {t[1]}"),
        st.tuples(inner, inner).map(lambda t: f"{t[0]} | {t[1]}"),
        st.tuples(inner, inner).map(lambda t: f"{t[0]}; {t[1]}"),
        st.tuples(inner, inner).map(lambda t: f"if {t[0]}; then {t[1]}; fi"),
        st.tuples(inner, inner).map(lambda t: f"while {t[0]}; do {t[1]}; done"),
        inner.map(lambda s: f"({s})"),
        inner.map(lambda s: f"{{ {s}; }}"),
        inner.map(lambda s: f"for v in a b; do {s}; done"),
        inner.map(lambda s: f"case $X in p) {s} ;; *) {s} ;; esac"),
    ),
    max_leaves=6,
)


class TestRoundTrip:
    @given(scripts)
    @settings(max_examples=300, deadline=None)
    def test_parse_render_parse(self, source):
        ast = parse(source)
        rendered = render(ast)
        reparsed = parse(rendered)
        assert structure(reparsed) == structure(ast), rendered

    @given(scripts)
    @settings(max_examples=150, deadline=None)
    def test_render_is_stable(self, source):
        once = render(parse(source))
        twice = render(parse(once))
        assert once == twice
