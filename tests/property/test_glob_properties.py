"""Property tests: glob compilation agrees with Python's fnmatch."""

import fnmatch

from hypothesis import given, settings, strategies as st

from repro.shell.glob import glob_to_regex

#: plain characters that are not glob syntax and not fnmatch oddities
_PLAIN = "abcxyz019._-"

pattern_atoms = st.one_of(
    st.sampled_from(list(_PLAIN)),
    st.sampled_from(["*", "?", "[ab]", "[a-z]", "[!a]", "[0-9]"]),
)

patterns = st.lists(pattern_atoms, min_size=0, max_size=6).map("".join)
texts = st.text(alphabet=_PLAIN, max_size=8)


class TestFnmatchAgreement:
    @given(patterns, texts)
    @settings(max_examples=400, deadline=None)
    def test_matches_fnmatch(self, pattern, text):
        ours = glob_to_regex(pattern).matches(text)
        # fnmatchcase has the same whole-string, case-sensitive semantics
        theirs = fnmatch.fnmatchcase(text, pattern)
        assert ours == theirs, (pattern, text)

    @given(texts)
    @settings(max_examples=100, deadline=None)
    def test_star_matches_everything(self, text):
        assert glob_to_regex("*").matches(text)

    @given(patterns)
    @settings(max_examples=100, deadline=None)
    def test_example_is_fnmatch_member(self, pattern):
        regex = glob_to_regex(pattern)
        example = regex.example()
        if example is not None and all(c in _PLAIN for c in example):
            assert fnmatch.fnmatchcase(example, pattern)


class TestLiteralEscaping:
    @given(texts)
    @settings(max_examples=100, deadline=None)
    def test_plain_text_matches_itself(self, text):
        assert glob_to_regex(text).matches(text)
