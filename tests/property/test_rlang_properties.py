"""Property-based tests for the regular-language engine.

Random regex ASTs over a small alphabet, checked against brute-force
string semantics: boolean algebra, containment, star, minimisation, and
quotients must all agree with per-string membership.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.rlang import Regex, minimise
from repro.rlang.charclass import CharSet
from repro.rlang.syntax import Alt, Concat, Epsilon, Lit, Node, Star

ALPHABET = "abc"


def leaf():
    return st.one_of(
        st.just(Epsilon()),
        st.sampled_from([Lit(CharSet.of(c)) for c in ALPHABET]),
        st.just(Lit(CharSet.of("ab"))),
    )


def regex_ast(max_depth=4):
    return st.recursive(
        leaf(),
        lambda inner: st.one_of(
            st.tuples(inner, inner).map(lambda t: Concat(*t)),
            st.tuples(inner, inner).map(lambda t: Alt(*t)),
            inner.map(Star),
        ),
        max_leaves=8,
    )


def strings(max_len=5):
    return st.text(alphabet=ALPHABET, max_size=max_len)


def regexes():
    return regex_ast().map(Regex.from_ast)


@st.composite
def regex_pair(draw):
    return draw(regexes()), draw(regexes())


class TestBooleanAlgebra:
    @given(regex_pair(), strings())
    @settings(max_examples=150, deadline=None)
    def test_union_semantics(self, pair, text):
        a, b = pair
        assert (a | b).matches(text) == (a.matches(text) or b.matches(text))

    @given(regex_pair(), strings())
    @settings(max_examples=150, deadline=None)
    def test_intersection_semantics(self, pair, text):
        a, b = pair
        assert (a & b).matches(text) == (a.matches(text) and b.matches(text))

    @given(regex_pair(), strings())
    @settings(max_examples=150, deadline=None)
    def test_difference_semantics(self, pair, text):
        a, b = pair
        assert (a - b).matches(text) == (a.matches(text) and not b.matches(text))

    @given(regexes(), strings())
    @settings(max_examples=150, deadline=None)
    def test_complement_semantics(self, a, text):
        assert (~a).matches(text) == (not a.matches(text))

    @given(regex_pair())
    @settings(max_examples=60, deadline=None)
    def test_de_morgan(self, pair):
        a, b = pair
        assert ~(a | b) == (~a & ~b)

    @given(regexes())
    @settings(max_examples=60, deadline=None)
    def test_double_complement(self, a):
        assert ~~a == a


class TestContainment:
    @given(regex_pair())
    @settings(max_examples=80, deadline=None)
    def test_operands_below_union(self, pair):
        a, b = pair
        assert a <= (a | b)
        assert b <= (a | b)

    @given(regex_pair())
    @settings(max_examples=80, deadline=None)
    def test_intersection_below_operands(self, pair):
        a, b = pair
        assert (a & b) <= a
        assert (a & b) <= b

    @given(regex_pair(), strings())
    @settings(max_examples=120, deadline=None)
    def test_containment_sound_for_membership(self, pair, text):
        a, b = pair
        if a <= b and a.matches(text):
            assert b.matches(text)


class TestStarAndConcat:
    @given(regexes())
    @settings(max_examples=60, deadline=None)
    def test_star_contains_base_and_empty(self, a):
        star = a.star()
        assert a <= star
        assert star.matches("")

    @given(regexes())
    @settings(max_examples=40, deadline=None)
    def test_star_idempotent(self, a):
        star = a.star()
        assert star.star() == star

    @given(regex_pair(), strings(max_len=4), strings(max_len=4))
    @settings(max_examples=100, deadline=None)
    def test_concat_semantics_witness(self, pair, u, v):
        a, b = pair
        if a.matches(u) and b.matches(v):
            assert (a + b).matches(u + v)


class TestWitnessesAndMinimisation:
    @given(regexes())
    @settings(max_examples=100, deadline=None)
    def test_example_is_member(self, a):
        example = a.example()
        if example is None:
            assert a.is_empty()
        else:
            assert a.matches(example)

    @given(regexes(), strings())
    @settings(max_examples=120, deadline=None)
    def test_minimisation_preserves_language(self, a, text):
        assert minimise(a.dfa).accepts(text) == a.matches(text)

    @given(regexes())
    @settings(max_examples=60, deadline=None)
    def test_examples_all_members(self, a):
        for example in a.examples(limit=5):
            assert a.matches(example)


def _brute_force_strings(max_len=4):
    for length in range(max_len + 1):
        for chars in itertools.product(ALPHABET, repeat=length):
            yield "".join(chars)


class TestQuotients:
    @given(regex_pair())
    @settings(max_examples=40, deadline=None)
    def test_right_quotient_brute_force(self, pair):
        a, b = pair
        quotient = a.strip_suffix(b)
        universe = list(_brute_force_strings(3))
        for u in universe:
            expected = any(b.matches(v) and a.matches(u + v) for v in universe)
            # quotient may contain u via suffixes longer than our brute
            # bound; only check the definite direction plus bounded agreement
            if expected:
                assert quotient.matches(u)

    @given(regex_pair())
    @settings(max_examples=40, deadline=None)
    def test_left_quotient_brute_force(self, pair):
        a, b = pair
        remainder = a.strip_prefix(b)
        universe = list(_brute_force_strings(3))
        for v in universe:
            expected = any(b.matches(u) and a.matches(u + v) for u in universe)
            if expected:
                assert remainder.matches(v)


def _shift_map(charset):
    """a->b, b->c, c->a (a bijection on the test alphabet)."""
    from repro.rlang.charclass import CharSet

    mapping = {"a": "b", "b": "c", "c": "a"}
    result = CharSet.empty()
    untouched = charset
    for src, dst in mapping.items():
        if src in charset:
            result = result.union(CharSet.of(dst))
            untouched = untouched.difference(CharSet.of(src))
    return result.union(untouched)


def _shift_str(text):
    return text.translate(str.maketrans("abc", "bca"))


class TestHomomorphicImage:
    @given(regexes(), strings())
    @settings(max_examples=100, deadline=None)
    def test_membership_transported(self, a, text):
        image = a.map_chars(_shift_map)
        if a.matches(text):
            assert image.matches(_shift_str(text))

    @given(regexes(), strings())
    @settings(max_examples=100, deadline=None)
    def test_bijection_exact(self, a, text):
        # for a bijective map the image contains exactly the mapped strings
        image = a.map_chars(_shift_map)
        assert image.matches(_shift_str(text)) == a.matches(text)

    @given(regex_pair())
    @settings(max_examples=40, deadline=None)
    def test_distributes_over_union(self, pair):
        a, b = pair
        lhs = (a | b).map_chars(_shift_map)
        rhs = a.map_chars(_shift_map) | b.map_chars(_shift_map)
        assert lhs == rhs

    @given(regex_pair())
    @settings(max_examples=30, deadline=None)
    def test_distributes_over_concat(self, pair):
        a, b = pair
        lhs = (a + b).map_chars(_shift_map)
        rhs = a.map_chars(_shift_map) + b.map_chars(_shift_map)
        assert lhs == rhs

    @given(regexes())
    @settings(max_examples=30, deadline=None)
    def test_commutes_with_star(self, a):
        lhs = a.star().map_chars(_shift_map)
        rhs = a.map_chars(_shift_map).star()
        assert lhs == rhs
