"""Property tests at the engine level.

- random arithmetic expressions evaluate identically to /bin/sh;
- metamorphic invariances: semantics-preserving rewrites (no-op
  prefixes, brace wrapping, comment insertion) must not change the
  analyzer's findings.
"""

import shutil
import subprocess

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.analysis import analyze
from repro.symex.arith import ArithError, evaluate

SH = shutil.which("sh")


# -- random arithmetic vs /bin/sh ---------------------------------------------

numbers = st.integers(min_value=0, max_value=99).map(str)
binops = st.sampled_from(["+", "-", "*", "/", "%"])


@st.composite
def arith_exprs(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        return draw(numbers)
    left = draw(arith_exprs(depth=depth + 1))
    right = draw(arith_exprs(depth=depth + 1))
    op = draw(binops)
    return f"({left}{op}{right})"


@pytest.mark.skipif(SH is None, reason="no /bin/sh")
class TestArithDifferential:
    @given(arith_exprs())
    @settings(max_examples=80, deadline=None)
    def test_matches_sh(self, expr):
        try:
            ours = evaluate(expr, lambda n: None)
        except ArithError:
            assume(False)  # division by zero etc.: sh would error too
            return
        completed = subprocess.run(
            [SH, "-c", f"echo $(({expr}))"],
            capture_output=True,
            text=True,
            timeout=5,
        )
        assume(completed.returncode == 0)
        assert str(ours) == completed.stdout.strip()


# -- metamorphic invariances -------------------------------------------------------

SCRIPTS = [
    'STEAMROOT="$(cd "${0%/*}" && echo $PWD)"\nrm -fr "$STEAMROOT"/*\n',
    'rm -fr "$1"\ncat "$1/config"\n',
    "mkdir /srv/app\nmkdir /srv/app\n",
    "lsb_release -a | grep '^desc' | cut -f 2\n",
    "echo hello | sort\n",
    'if [ "$(realpath "$1/")" != "/" ]; then rm -rf "$1"/w; fi\n',
]


def finding_codes(source, n_args=1):
    report = analyze(source, n_args=n_args)
    return {
        (d.code, d.always)
        for d in report.diagnostics
        if d.severity.value in ("error", "warning")
    }


class TestMetamorphic:
    @pytest.mark.parametrize("source", SCRIPTS)
    def test_true_prefix_preserves_findings(self, source):
        assert finding_codes(source) == finding_codes("true\n" + source)

    @pytest.mark.parametrize("source", SCRIPTS)
    def test_comment_insertion_preserves_findings(self, source):
        commented = "# a comment\n" + source.replace("\n", "\n# inline\n", 1)
        assert finding_codes(source) == finding_codes(commented)

    @pytest.mark.parametrize("source", SCRIPTS)
    def test_trailing_noop_preserves_findings(self, source):
        assert finding_codes(source) == finding_codes(source + ": noop\n")

    @pytest.mark.parametrize("source", SCRIPTS)
    def test_roundtrip_print_preserves_findings(self, source):
        from repro.shell import parse
        from repro.shell.printer import render

        rendered = render(parse(source)) + "\n"
        assert finding_codes(source) == finding_codes(rendered)
