"""Unit tests for the syntactic baseline linter."""

import pytest

from repro.lint import lint, lint_codes

FIG1 = 'STEAMROOT="$(cd "${0%/*}" && echo $PWD)"\nrm -fr "$STEAMROOT"/*\n'

FIG2 = """STEAMROOT="$(cd "${0%/*}" && echo $PWD)"
if [ "$(realpath "$STEAMROOT/")" != "/" ]; then
  rm -fr "$STEAMROOT"/*
else
  echo "Bad script path: $0"; exit 1
fi
"""

FIG3 = FIG2.replace('!= "/"', '= "/"')

FIG5 = """STEAMROOT="$(cd "${0%/*}" && echo $PWD)"/
case $(lsb_release -a | grep '^desc' | cut -f 2) in
  Debian) SUFFIX=".config/steam" ;;
  *Linux) SUFFIX=".steam" ;;
esac
rm -fr $STEAMROOT$SUFFIX
"""


class TestRules:
    def test_sc2086_unquoted_var(self):
        assert "SC2086" in lint_codes("rm $FILE")

    def test_sc2086_quoted_ok(self):
        assert "SC2086" not in lint_codes('rm "$FILE"')

    def test_sc2115_rm_var_slash(self):
        assert "SC2115" in lint_codes('rm -rf "$DIR"/*')

    def test_sc2115_not_on_other_commands(self):
        assert "SC2115" not in lint_codes('ls "$DIR"/*')

    def test_sc2164_unguarded_cd(self):
        assert "SC2164" in lint_codes("cd /tmp\nrm x")

    def test_sc2164_guarded_cd_ok(self):
        assert "SC2164" not in lint_codes("cd /tmp || exit 1")

    def test_sc2164_cd_in_if_ok(self):
        assert "SC2164" not in lint_codes("if cd /tmp; then rm x; fi")

    def test_sc2006_backticks(self):
        assert "SC2006" in lint_codes("echo `date`")

    def test_sc2016_dollar_in_single_quotes(self):
        assert "SC2016" in lint_codes("echo '$HOME is home'")

    def test_sc2154_unassigned(self):
        assert "SC2154" in lint_codes('echo "$never_assigned"')

    def test_sc2154_assigned_ok(self):
        assert "SC2154" not in lint_codes('x=1\necho "$x"')

    def test_sc2154_shell_set_vars_ok(self):
        for name in ("PPID", "UID", "OPTERR"):
            assert "SC2154" not in lint_codes(f'echo "${name}"'), name

    def test_sc2034_unused(self):
        assert "SC2034" in lint_codes("UNUSED=1\necho hi")

    def test_sc2034_used_ok(self):
        assert "SC2034" not in lint_codes('X=1\necho "$X"')

    def test_sc2162_read_without_r(self):
        assert "SC2162" in lint_codes("read line")

    def test_sc2162_read_with_r_ok(self):
        assert "SC2162" not in lint_codes("read -r line")

    def test_sc2046_unquoted_cmdsub(self):
        assert "SC2046" in lint_codes("rm $(find . -name x)")

    def test_sc2015_and_or_chain(self):
        assert "SC2015" in lint_codes("test -f x && echo yes || echo no")

    def test_diagnostics_tagged_as_lint(self):
        for diagnostic in lint("rm $FILE"):
            assert diagnostic.source == "lint"


class TestPaperBaselineBehaviour:
    """§2's characterisation of syntactic linting, reproduced exactly."""

    def test_warns_on_fig1(self):
        assert "SC2115" in lint_codes(FIG1)

    def test_false_positive_on_safe_fig2(self):
        """The safe fix still gets the same warning."""
        assert "SC2115" in lint_codes(FIG2)

    def test_cannot_distinguish_fig2_from_fig3(self):
        """The unsafe fix receives *identical* diagnostics: the linter
        fails to identify its unambiguous incorrectness."""
        assert lint_codes(FIG2) == lint_codes(FIG3)

    def test_silent_on_fig5_grep_bug(self):
        """No syntactic rule sees the dead '^desc' filter."""
        codes = lint_codes(FIG5)
        assert "SC2115" not in codes
        assert all(code in ("SC2086",) for code in codes)


class TestAdditionalRules:
    def test_sc2068_unquoted_at(self):
        assert "SC2068" in lint_codes("rm $@")

    def test_sc2068_quoted_ok(self):
        assert "SC2068" not in lint_codes('rm "$@"')

    def test_sc2166_test_connectives(self):
        assert "SC2166" in lint_codes('[ -n "$x" -a -f y ]')
        assert "SC2166" in lint_codes("test 1 -lt 2 -o 3 -lt 4")

    def test_sc2166_plain_test_ok(self):
        assert "SC2166" not in lint_codes('[ -n "$x" ]')

    def test_sc2126_grep_wc(self):
        assert "SC2126" in lint_codes("grep foo log | wc -l")

    def test_sc2126_wc_words_ok(self):
        assert "SC2126" not in lint_codes("grep foo log | wc -w")

    def test_sc2002_useless_cat(self):
        assert "SC2002" in lint_codes("cat file.txt | grep x")

    def test_sc2002_multi_file_ok(self):
        assert "SC2002" not in lint_codes("cat a b | grep x")

    def test_sc2035_leading_glob(self):
        assert "SC2035" in lint_codes("rm *.bak")

    def test_sc2035_anchored_ok(self):
        assert "SC2035" not in lint_codes("rm ./*.bak")
