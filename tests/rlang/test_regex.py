"""Unit tests for regex parsing, compilation, and language algebra."""

import pytest

from repro.rlang import Regex, RegexSyntaxError


def rx(pattern: str) -> Regex:
    return Regex.compile(pattern)


class TestMatching:
    @pytest.mark.parametrize(
        "pattern,text,expected",
        [
            ("abc", "abc", True),
            ("abc", "ab", False),
            ("abc", "abcd", False),
            ("a*", "", True),
            ("a*", "aaaa", True),
            ("a*", "ab", False),
            ("a+", "", False),
            ("a+", "aaa", True),
            ("a?b", "b", True),
            ("a?b", "ab", True),
            ("a?b", "aab", False),
            ("a|b", "a", True),
            ("a|b", "b", True),
            ("a|b", "c", False),
            ("(ab)+", "ababab", True),
            ("(ab)+", "aba", False),
            (".", "x", True),
            (".", "\n", False),
            (".*", "anything at all", True),
            ("[abc]", "b", True),
            ("[abc]", "d", False),
            ("[a-z]+", "hello", True),
            ("[a-z]+", "Hello", False),
            ("[^/]+", "filename", True),
            ("[^/]+", "a/b", False),
            ("a{3}", "aaa", True),
            ("a{3}", "aa", False),
            ("a{2,4}", "aa", True),
            ("a{2,4}", "aaaa", True),
            ("a{2,4}", "aaaaa", False),
            ("a{2,}", "aaaaaa", True),
            ("a{2,}", "a", False),
            (r"\d+", "12345", True),
            (r"\d+", "12a45", False),
            (r"\w+", "foo_bar9", True),
            (r"\s", " ", True),
            (r"\.", ".", True),
            (r"\.", "x", False),
            (r"a\|b", "a|b", True),
            ("", "", True),
            ("", "a", False),
        ],
    )
    def test_match(self, pattern, text, expected):
        assert rx(pattern).matches(text) is expected

    def test_anchors_ignored(self):
        assert rx("^abc$").matches("abc")
        assert not rx("^abc$").matches("xabc")

    def test_escaped_tab_newline(self):
        assert rx(r"a\tb").matches("a\tb")
        assert rx(r"a\nb").matches("a\nb")

    def test_hex_escape(self):
        assert rx(r"\x41").matches("A")

    def test_posix_class(self):
        assert rx("[[:digit:]]+").matches("0987")
        assert not rx("[[:digit:]]+").matches("a")
        assert rx("[[:xdigit:]]+").matches("deadBEEF42")

    def test_negated_class_with_range(self):
        pat = rx("[^a-z]+")
        assert pat.matches("ABC123")
        assert not pat.matches("aB")

    def test_literal_brace(self):
        assert rx("a{b").matches("a{b")

    def test_class_with_literal_dash(self):
        assert rx("[a-]").matches("-")
        assert rx("[-a]").matches("-")

    def test_non_capturing_group(self):
        assert rx("(?:ab)+").matches("abab")


class TestSyntaxErrors:
    @pytest.mark.parametrize(
        "pattern",
        ["(ab", "ab)", "*a", "+", "?", "[abc", "a{3,2}", "[z-a]", "[[:nope:]]"],
    )
    def test_bad_patterns(self, pattern):
        with pytest.raises(RegexSyntaxError):
            Regex.compile(pattern)


class TestAlgebra:
    def test_intersection(self):
        both = rx("[a-z]+") & rx(".*oo.*")
        assert both.matches("foo")
        assert not both.matches("FOO")
        assert not both.matches("bar")

    def test_union(self):
        either = rx("cat") | rx("dog")
        assert either.matches("cat") and either.matches("dog")
        assert not either.matches("cow")

    def test_difference(self):
        diff = rx("[a-z]+") - rx("root")
        assert diff.matches("user")
        assert not diff.matches("root")

    def test_complement(self):
        comp = ~rx("abc")
        assert not comp.matches("abc")
        assert comp.matches("abd") and comp.matches("")

    def test_concat(self):
        joined = Regex.literal("0x") + rx("[0-9a-f]+")
        assert joined.matches("0xdeadbeef")
        assert not joined.matches("deadbeef")

    def test_containment(self):
        assert rx("abc") <= rx("[a-z]+")
        assert not (rx("[a-z]+") <= rx("abc"))
        assert rx("(a|b)*abb") <= rx("(a|b)*")

    def test_strict_containment(self):
        assert rx("abc") < rx("[a-z]+")
        assert not (rx("abc") < rx("abc"))

    def test_equivalence(self):
        assert rx("(a|b)*") == rx("(b|a)*")
        assert rx("aa*") == rx("a+")
        assert rx("a?") == rx("a|")
        assert rx("a") != rx("b")

    def test_disjoint(self):
        assert rx("[0-9]+").disjoint(rx("[a-z]+"))
        assert not rx("[0-9a-f]+").disjoint(rx("[a-z]+"))

    def test_empty_language(self):
        assert (rx("a") & rx("b")).is_empty()
        assert not rx("a*").is_empty()

    def test_demorgan_languages(self):
        a, b = rx("[a-m]+"), rx("[g-z]+")
        assert ~(a | b) == (~a & ~b)


class TestWitnesses:
    def test_example_is_member(self):
        for pattern in ["abc", "[a-z]{3}", "(foo|ba+r)", "a*b"]:
            pat = rx(pattern)
            example = pat.example()
            assert example is not None
            assert pat.matches(example)

    def test_example_shortest(self):
        assert rx("a{3,5}").example() == "aaa"
        assert rx("ab|a").example() == "a"

    def test_example_empty_language(self):
        assert (rx("a") & rx("b")).example() is None

    def test_examples_enumeration(self):
        examples = rx("a{1,3}").examples(limit=10)
        assert examples == ["a", "aa", "aaa"]
        for ex in rx("(a|b){2}").examples(limit=4):
            assert rx("(a|b){2}").matches(ex)

    def test_matches_empty(self):
        assert rx("a*").matches_empty()
        assert not rx("a+").matches_empty()


class TestFiniteness:
    def test_finite(self):
        assert rx("abc|de").is_finite()
        assert rx("a{2,8}").is_finite()

    def test_infinite(self):
        assert not rx("a*").is_finite()
        assert not rx("ab+c").is_finite()

    def test_empty_is_finite(self):
        assert (rx("a") & rx("b")).is_finite()


class TestPaperFacts:
    """The two concrete regular-language facts the paper relies on."""

    def test_fig5_grep_filter_is_dead(self):
        # lsb_release -a output type ∩ grep '^desc' output type = ∅  (§3)
        lsb = rx(r"(Distributor ID|Description|Release|Codename):\t.*")
        grep_out = rx("desc.*")
        assert (lsb & grep_out).is_empty()
        # ...but the correct filter is live:
        assert not (lsb & rx("Desc.*")).is_empty()

    def test_hex_pipeline_polymorphic_containment(self):
        # 0x[0-9a-f]+ ⊆ 0x[0-9a-f]+.*  but  0x.* ⊄ 0x[0-9a-f]+.*   (§4)
        hex_body = rx("[0-9a-f]+")
        poly_out = Regex.literal("0x") + hex_body
        simple_out = Regex.literal("0x") + rx(".*")
        sort_domain = rx("0x[0-9a-f]+.*")
        assert poly_out <= sort_domain
        assert not (simple_out <= sort_domain)

    def test_path_shape_constraint(self):
        # §3's example constraint for path-valued variables.
        path = rx(r"/?([^/]*/)*[^/]+")
        assert path.matches("/home/jcarb/.steam")
        assert path.matches("upd.sh")
        assert path.matches("a/b/c")
        assert not path.matches("")


class TestMinimisation:
    def test_minimal_dfa_smaller_or_equal(self):
        pat = rx("(a|b)*abb(a|b)*")
        assert pat.min_dfa.n_states <= pat.dfa.n_states

    def test_minimal_dfa_same_language(self):
        pat = rx("(ab|a)(b?)")
        mdfa = pat.min_dfa
        for text in ["ab", "abb", "a", "b", "", "abbb"]:
            assert mdfa.accepts(text) == pat.matches(text)
