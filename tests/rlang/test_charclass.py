"""Unit tests for CharSet interval algebra."""

from repro.rlang.charclass import MAX_CODEPOINT, CharSet, partition


class TestConstruction:
    def test_of_chars(self):
        cs = CharSet.of("abc")
        assert "a" in cs and "b" in cs and "c" in cs
        assert "d" not in cs

    def test_of_merges_adjacent(self):
        cs = CharSet.of("abc")
        assert cs.intervals == ((ord("a"), ord("c")),)

    def test_range(self):
        cs = CharSet.range("0", "9")
        assert "0" in cs and "9" in cs and "5" in cs
        assert "a" not in cs

    def test_empty(self):
        assert CharSet.empty().is_empty()
        assert len(CharSet.empty()) == 0

    def test_universe(self):
        u = CharSet.universe()
        assert u.is_universe()
        assert "a" in u and "\n" in u and chr(MAX_CODEPOINT) in u

    def test_normalise_overlapping(self):
        cs = CharSet([(10, 20), (15, 30), (31, 40)])
        assert cs.intervals == ((10, 40),)

    def test_inverted_interval_dropped(self):
        assert CharSet([(20, 10)]).is_empty()

    def test_immutable(self):
        cs = CharSet.of("a")
        try:
            cs.intervals = ()
        except AttributeError:
            pass
        else:
            raise AssertionError("CharSet should be immutable")


class TestAlgebra:
    def test_union(self):
        cs = CharSet.of("a").union(CharSet.of("z"))
        assert "a" in cs and "z" in cs and "m" not in cs

    def test_intersect(self):
        a = CharSet.range("a", "m")
        b = CharSet.range("g", "z")
        both = a.intersect(b)
        assert "g" in both and "m" in both
        assert "a" not in both and "z" not in both

    def test_intersect_disjoint(self):
        assert CharSet.of("a").intersect(CharSet.of("b")).is_empty()

    def test_complement_roundtrip(self):
        cs = CharSet.range("a", "z")
        assert cs.complement().complement() == cs

    def test_complement_membership(self):
        cs = CharSet.of("/")
        comp = cs.complement()
        assert "/" not in comp
        assert "a" in comp and "\n" in comp

    def test_complement_of_empty_is_universe(self):
        assert CharSet.empty().complement().is_universe()

    def test_difference(self):
        cs = CharSet.range("a", "e").difference(CharSet.of("c"))
        assert "a" in cs and "b" in cs and "d" in cs and "e" in cs
        assert "c" not in cs

    def test_overlaps(self):
        assert CharSet.range("a", "m").overlaps(CharSet.range("m", "z"))
        assert not CharSet.of("a").overlaps(CharSet.of("b"))

    def test_demorgan(self):
        a = CharSet.range("a", "m")
        b = CharSet.of("xyz019")
        lhs = a.union(b).complement()
        rhs = a.complement().intersect(b.complement())
        assert lhs == rhs


class TestQueries:
    def test_len(self):
        assert len(CharSet.range("a", "z")) == 26
        assert len(CharSet.of("a").union(CharSet.of("c"))) == 2

    def test_sample_is_member(self):
        for cs in [CharSet.of("x"), CharSet.range("0", "9"), CharSet.of("\n")]:
            assert cs.sample() in cs

    def test_sample_prefers_printable(self):
        cs = CharSet([(0, 0x7E)])
        assert cs.sample() == " "

    def test_sample_empty_raises(self):
        try:
            CharSet.empty().sample()
        except ValueError:
            pass
        else:
            raise AssertionError("expected ValueError")

    def test_chars_limit(self):
        assert list(CharSet.range("a", "z").chars(limit=3)) == ["a", "b", "c"]

    def test_hash_eq(self):
        assert hash(CharSet.of("ab")) == hash(CharSet.range("a", "b"))
        assert CharSet.of("ab") == CharSet.range("a", "b")


class TestPartition:
    def test_partition_disjoint(self):
        atoms = partition([CharSet.range("a", "m"), CharSet.range("g", "z")])
        for i, x in enumerate(atoms):
            for y in atoms[i + 1 :]:
                assert not x.overlaps(y)

    def test_partition_covers_inputs(self):
        sets = [CharSet.range("a", "m"), CharSet.range("g", "z"), CharSet.of("0")]
        atoms = partition(sets)
        for cs in sets:
            covered = CharSet.empty()
            for atom in atoms:
                if atom.overlaps(cs):
                    assert atom.intersect(cs) == atom  # atom within cs
                    covered = covered.union(atom)
            assert covered == cs

    def test_partition_empty_input(self):
        assert partition([]) == []
