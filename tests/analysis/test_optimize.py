"""The optimization advisor: classification, reorder groups, the
race-detector safety gate, plan serialization, schema, and caching."""

import json
import os

import pytest

from repro.analysis import analyze
from repro.analysis.batch import BatchConfig
from repro.analysis.cache import ResultCache
from repro.analysis.optimize import (
    BLOCKING,
    COMMUTATIVE,
    PARALLELIZABLE,
    PLAN_SCHEMA_VERSION,
    STATELESS,
    UNKNOWN,
    UNSAFE,
    OptimizePlan,
    build_plan,
    classify_argv,
    optimize_source,
    plan_cache_key,
    run_optimize_batch,
    validate_plan,
)

FANOUT = """mkdir -p /srv/out
grep ERROR /var/log/a.log > /srv/out/a.txt
grep ERROR /var/log/b.log > /srv/out/b.txt
grep ERROR /var/log/c.log > /srv/out/c.txt
cat /srv/out/a.txt /srv/out/b.txt /srv/out/c.txt | sort | uniq -c > /srv/out/top.txt
"""


class TestClassifyArgv:
    def test_grep_is_stateless_line_map(self):
        klass, merge, evidence, _ = classify_argv(["grep", "ERROR"])
        assert klass == STATELESS
        assert merge == "cat"
        assert "signature" in evidence

    def test_grep_c_is_commutative_sum(self):
        klass, merge, _, _ = classify_argv(["grep", "-c", "ERROR"])
        assert klass == COMMUTATIVE
        assert merge == "sum"

    def test_sort_is_commutative_with_merge_flags(self):
        klass, merge, _, _ = classify_argv(["sort", "-rn"])
        assert klass == COMMUTATIVE
        assert merge == "sort -m -rn"

    def test_plain_sort_merge(self):
        _, merge, _, _ = classify_argv(["sort"])
        assert merge == "sort -m"

    def test_uniq_is_parallelizable_with_recollapse(self):
        klass, merge, _, _ = classify_argv(["uniq"])
        assert klass == PARALLELIZABLE
        assert merge == "uniq re-collapse"

    def test_uniq_c_is_blocking(self):
        klass, merge, _, _ = classify_argv(["uniq", "-c"])
        assert klass == BLOCKING
        assert merge is None

    def test_wc_is_commutative_sum(self):
        klass, merge, _, _ = classify_argv(["wc", "-l"])
        assert klass == COMMUTATIVE
        assert merge == "sum"

    def test_head_is_blocking(self):
        klass, _, evidence, _ = classify_argv(["head", "-5"])
        assert klass == BLOCKING
        assert "position" in evidence

    def test_tac_is_parallelizable(self):
        klass, merge, _, _ = classify_argv(["tac"])
        assert klass == PARALLELIZABLE
        assert merge == "tac-concat"

    def test_sed_substitution_is_stateless(self):
        klass, merge, _, _ = classify_argv(["sed", "s/foo/bar/g"])
        assert klass == STATELESS
        assert merge == "cat"

    def test_cut_is_stateless(self):
        klass, _, _, _ = classify_argv(["cut", "-d:", "-f1"])
        assert klass == STATELESS

    def test_state_builtin_is_unsafe(self):
        klass, _, evidence, _ = classify_argv(["cd", "/tmp"])
        assert klass == UNSAFE
        assert "shell state" in evidence

    def test_rm_is_unsafe_via_spec(self):
        klass, _, evidence, _ = classify_argv(["rm", "-f", "/tmp/x"])
        assert klass == UNSAFE
        assert "spec" in evidence

    def test_producer_role(self):
        klass, _, _, role = classify_argv(["seq", "1", "10"])
        assert klass == BLOCKING
        assert role == "source"

    def test_bare_cat_is_identity(self):
        klass, merge, _, _ = classify_argv(["cat"])
        assert klass == STATELESS
        assert merge == "cat"

    def test_cat_with_operands_is_a_source(self):
        klass, _, _, role = classify_argv(["cat", "/a", "/b"])
        assert klass == BLOCKING
        assert role == "source"

    def test_dynamic_argv_is_unknown(self):
        klass, _, _, _ = classify_argv(None)
        assert klass == UNKNOWN


class TestPipelinePlan:
    def test_stage_classes_and_splits(self):
        plan = build_plan(
            "grep err /l | sed 's/x/y/' | cut -f1 | sort | head -3\n"
        )
        assert len(plan.pipelines) == 1
        stages = plan.pipelines[0].stages
        assert [s.klass for s in stages] == [
            STATELESS, STATELESS, STATELESS, COMMUTATIVE, BLOCKING,
        ]
        splits = plan.pipelines[0].splits
        # one maximal stateless run (stages 0-2, merge cat), then sort alone
        assert (splits[0].begin, splits[0].end, splits[0].merge) == (0, 2, "cat")
        assert (splits[1].begin, splits[1].end) == (3, 3)
        assert splits[1].merge == "sort -m"

    def test_stream_types_annotated(self):
        plan = build_plan("seq 1 5 | sort -n | head -2\n")
        stages = plan.pipelines[0].stages
        assert stages[0].stream_type is not None  # seq produces numbers

    def test_write_redirect_stage_is_unsafe(self):
        plan = build_plan("grep a /l | sort > /out\n")
        assert plan.pipelines[0].stages[-1].klass == UNSAFE

    def test_all_blocking_pipeline_notes_no_split(self):
        plan = build_plan("seq 1 3 | head -1\n")
        assert "no splittable stage found" in plan.pipelines[0].notes


class TestReorderGroups:
    def test_independent_fanout_grouped_and_verified(self):
        plan = build_plan(FANOUT)
        assert len(plan.groups) == 1
        group = plan.groups[0]
        assert group.commands == [1, 2, 3]
        assert group.verified
        assert "zero new race hazards" in group.justification
        assert plan.rewritten_script is not None
        assert plan.rewritten_script.count(" &\n") == 3
        assert "wait" in plan.rewritten_script

    def test_dependent_commands_not_grouped(self):
        plan = build_plan(
            "grep a /in > /tmp/mid\ngrep b /tmp/mid > /tmp/out\n"
        )
        assert plan.groups == []
        assert plan.rewritten_script is None

    def test_assignments_are_pinned(self):
        plan = build_plan(
            "OUT=/tmp/o1\nDST=/tmp/o2\ngrep a /x > /tmp/a\ngrep b /y > /tmp/b\n"
        )
        pinned = {entry["command"] for entry in plan.pinned}
        assert 0 in pinned and 1 in pinned
        assert all("subshell" in entry["reason"] for entry in plan.pinned)
        # the two greps are still independent and groupable
        assert any(group.commands == [2, 3] for group in plan.groups)

    def test_state_builtins_are_pinned(self):
        plan = build_plan("cd /srv\ngrep a /x > /a\ngrep b /y > /b\n")
        assert any(
            "state builtin" in entry["reason"] for entry in plan.pinned
        )

    def test_background_command_not_double_backgrounded(self):
        plan = build_plan("grep a /x > /a &\ngrep b /y > /b\ngrep c /z > /c\n")
        if plan.rewritten_script is not None:
            assert "& &" not in plan.rewritten_script
            assert "&  &" not in plan.rewritten_script

    def test_schedule_matches_dependencies(self):
        plan = build_plan(FANOUT)
        assert plan.schedule == [[0], [1, 2, 3], [4]]
        # every dependence edge crosses generations forward
        position = {
            index: gen_index
            for gen_index, generation in enumerate(plan.schedule)
            for index in generation
        }
        for dep in plan.dependencies:
            assert position[dep["src"]] < position[dep["dst"]]


class TestSafetyGate:
    """The acceptance-criteria property: re-analyzing the advisor's
    rewritten script with --races yields zero hazards beyond the
    original's — the advisor never introduces a hazard it can detect."""

    CORPUS = [
        FANOUT,
        "grep a /x > /tmp/a\ngrep b /y > /tmp/b\n",
        "mkdir -p /d\ntouch /d/x\ntouch /d/y\nrm /d/x\n",
        "OUT=/tmp/q\ngrep a /x > /tmp/a\ngrep b /y > $OUT\n",
        "seq 1 5 > /tmp/n1\nseq 6 9 > /tmp/n2\ncat /tmp/n1 /tmp/n2 | wc -l > /tmp/c\n",
    ]

    @pytest.mark.parametrize("index", range(len(CORPUS)))
    def test_no_new_hazards(self, index):
        from collections import Counter

        source = self.CORPUS[index]
        plan = build_plan(source)
        if plan.rewritten_script is None:
            pytest.skip("no rewrite suggested for this script")
        baseline = Counter(
            (d.code, d.message) for d in analyze(source, races=True).races()
        )
        rewritten = Counter(
            (d.code, d.message)
            for d in analyze(plan.rewritten_script, races=True).races()
        )
        assert not (rewritten - baseline), (
            f"advisor introduced hazards: {rewritten - baseline}"
        )

    def test_examples_corpus_no_new_hazards(self):
        from collections import Counter

        root = os.path.join(
            os.path.dirname(__file__), "..", "..", "examples", "scripts"
        )
        checked = 0
        for name in sorted(os.listdir(root)):
            if not name.endswith(".sh"):
                continue
            with open(os.path.join(root, name), "r", encoding="utf-8") as fh:
                source = fh.read()
            plan = OptimizePlan.from_dict(optimize_source(source))
            if plan.rewritten_script is None:
                continue
            checked += 1
            baseline = Counter(
                (d.code, d.message)
                for d in analyze(source, races=True).races()
            )
            rewritten = Counter(
                (d.code, d.message)
                for d in analyze(plan.rewritten_script, races=True).races()
            )
            assert not (rewritten - baseline), name
        assert checked >= 1  # log_fanout.sh must produce a rewrite


class TestPlanSerialization:
    def test_round_trip_identity(self):
        plan = build_plan(FANOUT)
        first = plan.to_dict()
        second = OptimizePlan.from_dict(first).to_dict()
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )

    def test_schema_valid(self):
        errors = validate_plan(build_plan(FANOUT).to_dict())
        assert errors == []

    def test_schema_rejects_bad_class(self):
        data = build_plan(FANOUT).to_dict()
        data["pipelines"][0]["stages"][0]["class"] = "warp-speed"
        errors = validate_plan(data)
        assert any("warp-speed" in error for error in errors)

    def test_schema_rejects_missing_required(self):
        data = build_plan(FANOUT).to_dict()
        del data["schedule"]
        errors = validate_plan(data)
        assert any("schedule" in error for error in errors)

    def test_plans_are_deterministic_across_runs(self):
        first = json.dumps(optimize_source(FANOUT), sort_keys=True)
        second = json.dumps(optimize_source(FANOUT), sort_keys=True)
        assert first == second

    def test_render_is_deterministic(self):
        assert build_plan(FANOUT).render() == build_plan(FANOUT).render()

    def test_dot_export(self):
        dot = build_plan(FANOUT).to_dot()
        assert dot.startswith("digraph")
        assert "palegreen" in dot  # the verified group is highlighted
        assert "c1 -> c4" in dot

    def test_optimize_source_never_raises(self):
        data = optimize_source("if then fi ((((")
        assert data["degraded"]
        assert "internal error" in data["degraded_reason"]


class TestBudget:
    def test_exhausted_budget_degrades_plan(self):
        config = BatchConfig(max_states=1)
        plan = build_plan(FANOUT, config)
        assert plan.degraded
        assert plan.degraded_reason

    def test_degraded_plan_not_cached(self, tmp_path):
        scripts = tmp_path / "scripts"
        scripts.mkdir()
        (scripts / "a.sh").write_text(FANOUT)
        cache = ResultCache(str(tmp_path / "cache"))
        config = BatchConfig(max_states=1)
        run_optimize_batch([str(scripts)], config=config, jobs=1, cache=cache)
        key = plan_cache_key(FANOUT, config)
        assert cache.get(key, schema=PLAN_SCHEMA_VERSION) is None


class TestPlanCache:
    def test_warm_batch_is_byte_identical_and_cached(self, tmp_path):
        scripts = tmp_path / "scripts"
        scripts.mkdir()
        (scripts / "a.sh").write_text(FANOUT)
        (scripts / "b.sh").write_text("grep a /x > /a\ngrep b /y > /b\n")
        cache = ResultCache(str(tmp_path / "cache"))
        cold = run_optimize_batch([str(scripts)], jobs=1, cache=cache)
        warm = run_optimize_batch([str(scripts)], jobs=1, cache=cache)
        assert cold.misses == 2 and cold.hits == 0
        assert warm.hits == 2 and warm.misses == 0
        assert warm.render() == cold.render()

    def test_plan_key_distinct_from_report_key(self):
        from repro.analysis.cache import cache_key

        config = BatchConfig()
        assert plan_cache_key(FANOUT, config) != cache_key(
            FANOUT, config.fingerprint()
        )

    def test_stale_plan_schema_reads_as_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = plan_cache_key(FANOUT, BatchConfig())
        cache.put(key, optimize_source(FANOUT))
        assert cache.get(key, schema=PLAN_SCHEMA_VERSION) is not None
        # entries written by an older plan schema must read as misses
        assert cache.get(key, schema=PLAN_SCHEMA_VERSION + 1) is None


class TestObservability:
    def test_optimize_counters_and_spans(self):
        from repro.obs import TraceRecorder, use_recorder

        recorder = TraceRecorder()
        with use_recorder(recorder):
            build_plan(FANOUT)
        assert recorder.counter("optimize.runs") == 1
        assert recorder.counter("optimize.pipelines") == 1
        assert recorder.counter("optimize.cross_checks") >= 1
        assert recorder.counter("optimize.groups") == 1
