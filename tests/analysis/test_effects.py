"""Effect-graph hazard analysis: file-system races over `&`/`wait`."""

from repro.analysis import analyze
from repro.analysis.effects import (
    RaceChecker,
    build_effect_graph,
    display_path,
    find_hazards,
)
from repro.obs import TraceRecorder, use_recorder
from repro.symex import Engine


def run_states(source, n_args=0):
    engine = Engine(checkers=[RaceChecker()])
    return engine.run_script(source, n_args=n_args)


def race_codes(source, n_args=0):
    result = run_states(source, n_args=n_args)
    return sorted({d.code for d in result.diagnostics if d.code.startswith("race-")})


class TestAcceptanceScenario:
    SOURCE = "cmd > f &\ngrep x f\n"

    def test_read_write_race_reported(self):
        result = run_states(self.SOURCE)
        races = result.by_code("race-read-write")
        assert races, [d.render() for d in result.diagnostics]

    def test_race_names_both_commands(self):
        result = run_states(self.SOURCE)
        [race] = result.by_code("race-read-write")
        assert "grep x f" in race.message
        assert "cmd >f" in race.message
        # both positions are carried: the writer at 1:1, the reader at 2:1
        joined = " ".join(race.related)
        assert "1:1" in joined and "2:1" in joined

    def test_missing_wait_reported(self):
        result = run_states(self.SOURCE)
        assert result.has("race-missing-wait")

    def test_wait_silences(self):
        assert race_codes("cmd > f &\nwait\ngrep x f\n") == []

    def test_and_and_sequencing_silences(self):
        assert race_codes("cmd > f && grep x f\n") == []

    def test_distinct_literal_paths_silent(self):
        assert race_codes("cmd > f &\ngrep x g\n") == []


class TestConflictClasses:
    def test_write_write_fg_vs_bg(self):
        assert "race-write-write" in race_codes("cmd > f &\ncmd2 > f\n")

    def test_write_write_two_bg_jobs(self):
        assert "race-write-write" in race_codes("cmd > f &\ncmd2 > f &\n")

    def test_two_bg_jobs_distinct_files_silent(self):
        assert race_codes("cmd > f &\ncmd2 > g &\n") == []

    def test_wait_percent_joins_selectively(self):
        source = (
            "cmd > f &\ncmd2 > g &\nwait %1\ngrep x f\ngrep y g\n"
        )
        result = run_states(source)
        races = result.by_code("race-read-write")
        paths = {  # only the un-waited job's file is racy
            d.message.split("`")[1] for d in races
        }
        assert "g" in " ".join(d.message for d in races)
        assert all("`f`" not in d.message for d in races)

    def test_toctou_check_then_use(self):
        source = "fetch > f &\ntest -f f && cat f\n"
        result = run_states(source)
        toctous = result.by_code("race-toctou")
        assert toctous
        assert "test -f f" in toctous[0].message
        assert "cat f" in toctous[0].message
        assert "fetch >f" in toctous[0].message

    def test_toctou_silent_after_wait(self):
        assert "race-toctou" not in race_codes(
            "fetch > f &\nwait\ntest -f f && cat f\n"
        )


class TestSymbolicAliasing:
    def test_unconstrained_variable_may_alias(self):
        codes = race_codes('cmd > "$1" &\ngrep x f\n', n_args=1)
        assert "race-read-write" in codes

    def test_constrained_disjoint_is_silent(self):
        source = 'case "$1" in *.log) cmd > "$1" & grep x f;; esac\n'
        assert race_codes(source, n_args=1) == []

    def test_constrained_overlapping_flags(self):
        source = 'case "$1" in *.log) cmd > "$1" & grep x a.log;; esac\n'
        assert "race-read-write" in race_codes(source, n_args=1)


class TestEffectGraph:
    def test_nodes_and_windows(self):
        result = run_states("cmd > f &\ngrep x f\n")
        graph = build_effect_graph(result.states[0])
        labels = {node.label() for node in graph.nodes}
        assert "cmd >f" in labels and "grep x f" in labels
        tasks = {node.task for node in graph.nodes}
        assert 0 in tasks and any(t != 0 for t in tasks)
        assert len(graph.open_at_exit) == 1  # never waited for

    def test_wait_closes_window(self):
        result = run_states("cmd > f &\nwait\ngrep x f\n")
        graph = build_effect_graph(result.states[0])
        assert graph.open_at_exit == []
        [window] = graph.windows.values()
        assert window.close_idx is not None

    def test_fork_and_join_edges(self):
        result = run_states("mkdir /srv/d\ncmd > f &\nwait\ngrep x f\n")
        graph = build_effect_graph(result.states[0])
        kinds = {edge.kind for edge in graph.edges}
        assert "fork" in kinds and "join" in kinds

    def test_render_mentions_commands(self):
        result = run_states("cmd > f &\ngrep x f\n")
        text = build_effect_graph(result.states[0]).render()
        assert "cmd >f" in text and "grep x f" in text and "bg#" in text

    def test_display_path_hides_cwd_root(self):
        assert display_path("<v-1>/f") == "f"
        assert display_path("<v-1>") == "."
        assert display_path("/etc/passwd") == "/etc/passwd"

    def test_no_hazards_without_windows(self):
        result = run_states("cmd > f\ngrep x f\n")
        graph = build_effect_graph(result.states[0])
        assert graph.windows == {}
        assert find_hazards(graph) == []


class TestTelemetry:
    def test_counters_recorded(self):
        recorder = TraceRecorder()
        with use_recorder(recorder):
            report = analyze("cmd > f &\ngrep x f\n")
        assert report.races()
        assert recorder.counter("effects.background_jobs") > 0
        assert recorder.counter("effects.graph_nodes") > 0
        assert recorder.counter("effects.conflicts") > 0
        assert recorder.counter("effects.regions_open_at_exit") > 0

    def test_effects_span_present(self):
        recorder = TraceRecorder()
        with use_recorder(recorder):
            analyze("cmd > f &\ngrep x f\n")
        names = {span.name for span in recorder.iter_spans()}
        assert "analysis.effects" in names


class TestAnalyzerIntegration:
    def test_report_races_accessor_and_summary(self):
        report = analyze("cmd > f &\ngrep x f\n")
        assert report.races()
        assert "interleaving hazard" in report.render()

    def test_no_races_toggle(self):
        report = analyze("cmd > f &\ngrep x f\n", races=False)
        assert report.races() == []

    def test_related_rendered(self):
        report = analyze("cmd > f &\ngrep x f\n")
        [race] = report.by_code("race-read-write")
        assert race.related
        assert "with:" in race.render()

    def test_clean_script_unaffected(self):
        report = analyze("mkdir -p /srv/app\n")
        assert report.races() == []


class TestRedirectClobbersInput:
    def test_grep_redirect_to_own_input(self):
        # the acceptance case: `>` truncates the input before grep reads it
        report = analyze("grep foo file > file")
        [diag] = report.by_code("redirect-clobbers-input")
        assert diag.always
        assert diag.severity.value == "warning"

    def test_both_locations_reported(self):
        report = analyze("grep foo file > file")
        [diag] = report.by_code("redirect-clobbers-input")
        # main location: the redirect target; related: the reading command
        assert diag.pos is not None and diag.pos.col == 17
        assert diag.related and "grep" in diag.related[0]
        assert "1:1" in diag.related[0]

    def test_append_does_not_clobber(self):
        # `>>` opens without truncating: reading-then-appending is fine
        report = analyze("grep foo file >> file")
        assert not report.has("redirect-clobbers-input")

    def test_distinct_target_is_fine(self):
        report = analyze("grep foo file > other")
        assert not report.has("redirect-clobbers-input")

    def test_input_redirect_then_output_redirect(self):
        # both orderings of `< file > file` are caught
        report = analyze("cat < file > file")
        assert report.has("redirect-clobbers-input")
        report = analyze("cat > file < file")
        assert report.has("redirect-clobbers-input")

    def test_unrelated_commands_not_conflated(self):
        # a different command reading the file earlier is not a clobber
        # by *this* command's redirect (that is the race checkers' job)
        report = analyze("grep foo file\ncmd > file\n", races=False)
        assert not report.has("redirect-clobbers-input")

    def test_sort_in_place_antipattern(self):
        report = analyze("sort file > file")
        assert report.has("redirect-clobbers-input")

    def test_round_trips_through_serialization(self):
        from repro.analysis.report import Report

        report = analyze("grep foo file > file")
        restored = Report.from_dict(report.to_dict())
        assert restored.render() == report.render()
