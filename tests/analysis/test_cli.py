"""Unit tests for the CLI entry points."""

import io
import sys

import pytest

from repro import cli


@pytest.fixture
def script_file(tmp_path):
    def write(content):
        path = tmp_path / "script.sh"
        path.write_text(content)
        return str(path)

    return write


def run_tool(main, argv, capsys):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestAnalyzeCli:
    def test_unsafe_script_exits_nonzero(self, script_file, capsys):
        path = script_file('rm -rf /\n')
        code, out, _ = run_tool(cli.main_analyze, [path], capsys)
        assert code == 1
        assert "dangerous-deletion" in out

    def test_safe_script_exits_zero(self, script_file, capsys):
        path = script_file("echo hello\n")
        code, out, _ = run_tool(cli.main_analyze, [path], capsys)
        assert code == 0

    def test_errors_only_filter(self, script_file, capsys):
        path = script_file("mkdir /opt/x\n")
        code, out, _ = run_tool(cli.main_analyze, [path, "--errors-only"], capsys)
        assert "idempotence" not in out

    def test_platforms_flag(self, script_file, capsys):
        path = script_file("sed -i s/a/b/ f\n")
        code, out, _ = run_tool(
            cli.main_analyze, [path, "--platforms", "macos"], capsys
        )
        assert "platform-flag" in out

    def test_lint_merge(self, script_file, capsys):
        path = script_file("rm $X\n")
        code, out, _ = run_tool(cli.main_analyze, [path, "--lint"], capsys)
        assert "SC2086" in out

    def test_races_on_by_default(self, script_file, capsys):
        path = script_file("cmd > f &\ngrep x f\n")
        code, out, _ = run_tool(cli.main_analyze, [path], capsys)
        assert "race-read-write" in out
        assert "race-missing-wait" in out

    def test_no_races_toggle(self, script_file, capsys):
        path = script_file("cmd > f &\ngrep x f\n")
        code, out, _ = run_tool(cli.main_analyze, [path, "--no-races"], capsys)
        assert "race-" not in out


class TestLintCli:
    def test_reports_codes(self, script_file, capsys):
        path = script_file('rm -rf "$D"/*\n')
        code, out, _ = run_tool(cli.main_lint, [path], capsys)
        assert code == 1
        assert "SC2115" in out

    def test_clean(self, script_file, capsys):
        path = script_file('printf %s hi\n')
        code, out, _ = run_tool(cli.main_lint, [path], capsys)
        assert code == 0


class TestTypeofCli:
    def test_named_type(self, capsys):
        code, out, _ = run_tool(cli.main_typeof, ["url"], capsys)
        assert code == 0
        assert "://" in out

    def test_command_signature(self, capsys):
        code, out, _ = run_tool(cli.main_typeof, ["sed", "s/^/0x/"], capsys)
        assert code == 0
        assert "∀α" in out and "0xα" in out

    def test_unknown(self, capsys):
        code, out, err = run_tool(cli.main_typeof, ["frobnicate"], capsys)
        assert code == 1
        assert "known named types" in err


class TestMineCli:
    def test_mine_rm(self, capsys):
        code, out, _ = run_tool(cli.main_mine, ["rm"], capsys)
        assert code == 0
        assert "exit 0" in out and "delete" in out


class TestVerifyCli:
    def test_reject(self, script_file, capsys):
        path = script_file("rm -rf /home/user/mine/x\n")
        code, out, _ = run_tool(
            cli.main_verify, [path, "--no-RW", "~/mine"], capsys
        )
        assert code == 1
        assert "REJECT" in out

    def test_allow(self, script_file, capsys):
        path = script_file("mkdir -p /opt/sw\n")
        code, out, _ = run_tool(
            cli.main_verify, [path, "--no-RW", "~/mine"], capsys
        )
        assert code == 0
        assert "ALLOW" in out


class TestDispatcher:
    def test_usage_on_unknown(self, capsys):
        assert cli.main(["bogus"]) == 2

    def test_dispatch(self, script_file, capsys):
        path = script_file("echo hi\n")
        assert cli.main(["analyze", path]) == 0
