"""Regression coverage for the deps.py blind spots the optimizer relies
on: compound-command event attribution, env-var def/use through command
substitutions and compound forms, the WAR variable edge, and budgeted
(degrading, never raising) dependence analysis."""

from repro.analysis.deps import _vars_of, analyze_dependencies
from repro.analysis.resilience import ResourceBudget
from repro.shell import parse


def _vars(source):
    return _vars_of(parse(source))


class TestCompoundAttribution:
    """Events raised inside compound bodies must be attributed to the
    enclosing top-level command, yielding the same dependence edges a
    flat command would."""

    def test_if_body_write_orders_later_read(self):
        graph = analyze_dependencies(
            'if [ -f /etc/flag ]; then echo hi > /tmp/x; fi\ncat /tmp/x\n'
        )
        assert graph.must_precede(0, 1)
        assert any(d.kind == "flow" for d in graph.dependencies)

    def test_brace_group_write_orders_later_read(self):
        graph = analyze_dependencies(
            '{ echo a > /tmp/x; echo b > /tmp/y; }\ncat /tmp/x\n'
        )
        assert graph.must_precede(0, 1)

    def test_for_body_write_orders_later_read(self):
        graph = analyze_dependencies(
            'for f in /tmp/a /tmp/b; do touch $f; done\ncat /tmp/a\n'
        )
        # the loop body touches /tmp/a; the later cat reads it: the
        # write inside the loop must be attributed to command 0
        assert graph.must_precede(0, 1)
        assert any(d.kind == "flow" for d in graph.dependencies)

    def test_independent_compound_commands_stay_unordered(self):
        graph = analyze_dependencies(
            'if [ -f /a ]; then echo 1 > /tmp/p; fi\n'
            'if [ -f /b ]; then echo 2 > /tmp/q; fi\n'
        )
        assert (0, 1) in graph.independent_pairs()


class TestVarTracking:
    def test_cmdsub_defs_do_not_escape(self):
        uses, defs = _vars('X=$(Y=5; echo a)')
        assert defs == {"X"}
        assert "Y" not in defs

    def test_cmdsub_uses_propagate(self):
        uses, defs = _vars('X=$(cat $SRC)')
        assert "SRC" in uses
        assert defs == {"X"}

    def test_assignment_via_cmdsub_creates_dependency(self):
        graph = analyze_dependencies('LIST=$(ls $DIR)\necho $LIST\n')
        assert graph.must_precede(0, 1)
        assert any(
            d.kind == "var" and "$LIST" in d.via for d in graph.dependencies
        )

    def test_for_loop_var_and_word_uses(self):
        uses, defs = _vars('for f in $INPUTS; do echo $f; done')
        assert "INPUTS" in uses
        assert "f" in defs

    def test_read_builtin_defines(self):
        _, defs = _vars('read NAME')
        assert "NAME" in defs

    def test_export_assignment_defines(self):
        _, defs = _vars('export PATH=/bin')
        assert "PATH" in defs

    def test_case_subject_is_a_use(self):
        uses, _ = _vars('case $MODE in a) echo 1;; esac')
        assert "MODE" in uses

    def test_compound_redirect_target_is_a_use(self):
        uses, _ = _vars('if true; then echo x; fi > $OUT')
        assert "OUT" in uses

    def test_param_default_assignment_defines(self):
        _, defs = _vars('echo ${COLOR:=red}')
        assert "COLOR" in defs

    def test_war_edge_read_then_redefine(self):
        graph = analyze_dependencies('echo $V > /tmp/a\nV=2\n')
        assert graph.must_precede(0, 1)
        assert any("write-after-read" in d.via for d in graph.dependencies)


class TestBudgetedDeps:
    def test_exhausted_budget_degrades_not_raises(self):
        graph = analyze_dependencies(
            "mkdir /a\ntouch /a/x\ntouch /a/y\nrm /a/x\n",
            budget=ResourceBudget(max_states=1),
        )
        assert graph.degraded
        assert graph.degraded_reason
        assert "degraded" in graph.render()

    def test_degraded_graph_is_conservative(self):
        """Commands past the budget trip point go external: they are
        ordered after everything, never reordered on missing evidence."""
        graph = analyze_dependencies(
            "touch /tmp/a\ntouch /tmp/b\ntouch /tmp/c\n",
            budget=ResourceBudget(max_states=1),
        )
        tripped = [e.index for e in graph.effects if e.external]
        assert tripped, "budget of 1 state must trip"
        for index in tripped:
            for other in range(len(graph.effects)):
                if other != index:
                    assert graph.must_precede(
                        min(index, other), max(index, other)
                    )

    def test_ample_budget_matches_unbudgeted(self):
        source = "mkdir -p /d\necho a > /d/f\ncat /d/f\n"
        free = analyze_dependencies(source)
        budgeted = analyze_dependencies(
            source, budget=ResourceBudget(deadline=30.0, max_states=100_000)
        )
        assert not budgeted.degraded
        shape = lambda g: sorted(
            (d.src, d.dst, d.kind) for d in g.dependencies
        )
        assert shape(budgeted) == shape(free)
