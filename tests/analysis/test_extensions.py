"""Unit tests for the §5 extensions: dependencies, fixes, visualization."""

import pytest

from repro.analysis.deps import analyze_dependencies
from repro.analysis.fixes import (
    apply_fixes,
    suggest_fixes,
    synthesize_prologue,
)
from repro.analysis.viz import behaviour_summary, explore, render_tree


class TestDependencies:
    def test_flow_dependency(self):
        graph = analyze_dependencies(
            "grep E /l/a >/out/a.txt\ncat /out/a.txt\n"
        )
        assert graph.must_precede(0, 1)

    def test_independent_commands(self):
        graph = analyze_dependencies(
            "grep E /l/a >/o/a.txt\ngrep E /l/b >/o/b.txt\n"
        )
        assert (0, 1) in graph.independent_pairs()

    def test_mkdir_before_write(self):
        graph = analyze_dependencies("mkdir -p /out\ntouch /out/f\n")
        assert graph.must_precede(0, 1)

    def test_variable_dependency(self):
        graph = analyze_dependencies("X=$(cat /a)\necho $X >/b\n")
        assert graph.must_precede(0, 1)

    def test_anti_dependency(self):
        graph = analyze_dependencies("cat /data\nrm -f /data\n")
        assert graph.must_precede(0, 1)

    def test_output_dependency(self):
        graph = analyze_dependencies("echo a >/f\necho b >/f\n")
        assert graph.must_precede(0, 1)

    def test_parallel_schedule_stages(self):
        graph = analyze_dependencies(
            "mkdir -p /out\n"
            "grep E /l/a >/out/a\n"
            "grep E /l/b >/out/b\n"
            "cat /out/a\n"
        )
        stages = graph.stages()
        assert stages[0] == [0]
        assert set(stages[1]) == {1, 2}
        assert stages[2] == [3]

    def test_unknown_command_is_barrier(self):
        graph = analyze_dependencies("frobnicate\necho done >/log\n")
        assert graph.must_precede(0, 1)

    def test_render(self):
        graph = analyze_dependencies("touch /a\ncat /a\n")
        text = graph.render()
        assert "schedule:" in text and "flow" in text


class TestFixes:
    def test_mkdir_fix_applies(self):
        source = "mkdir /opt/app\n"
        fixes = suggest_fixes(source)
        assert any(f.applicable for f in fixes)
        fixed = apply_fixes(source, fixes)
        assert "mkdir -p /opt/app" in fixed

    def test_ln_fix_applies(self):
        source = "ln -s /a /b\n"
        fixed = apply_fixes(source, suggest_fixes(source))
        assert "ln -sf" in fixed

    def test_fixed_script_is_cleaner(self):
        from repro.analysis import analyze

        source = "mkdir /opt/app\nln -s /a /b\n"
        fixed = apply_fixes(source, suggest_fixes(source))
        assert len(analyze(fixed).by_code("idempotence")) == 0

    def test_dangerous_deletion_guard_hint(self):
        source = 'rm -rf "$TARGET"/cache\n'
        fixes = suggest_fixes(source)
        guard = [f for f in fixes if f.code == "dangerous-deletion"]
        assert guard and "realpath" in guard[0].description
        assert "TARGET" in guard[0].description

    def test_platform_hint(self):
        source = "# @platforms macos\nsed -i s/a/b/ f\n"
        fixes = suggest_fixes(source)
        hints = [f for f in fixes if f.code == "platform-flag"]
        assert hints and "temporary file" in hints[0].description

    def test_non_applicable_fixes_not_applied(self):
        source = 'rm -rf "$X"/y\n'
        assert apply_fixes(source, suggest_fixes(source)) == source


class TestPrologue:
    def test_utility_checks(self):
        prologue = synthesize_prologue("frobnicate --init\n")
        assert "frobnicate" in prologue.utility_checks
        assert "command -v frobnicate" in prologue.render()

    def test_path_checks(self):
        prologue = synthesize_prologue("cat /etc/app.conf\n")
        assert "/etc/app.conf" in prologue.path_checks

    def test_created_paths_not_checked(self):
        prologue = synthesize_prologue("touch /tmp/f\ncat /tmp/f\n")
        assert "/tmp/f" not in prologue.path_checks

    def test_env_checks(self):
        prologue = synthesize_prologue('echo "$DEPLOY_TOKEN"\n')
        assert "DEPLOY_TOKEN" in prologue.env_checks
        assert "${DEPLOY_TOKEN:?" in prologue.render()

    def test_known_commands_not_checked(self):
        prologue = synthesize_prologue("grep x f | sort\n")
        assert "grep" not in prologue.utility_checks
        assert "sort" not in prologue.utility_checks

    def test_empty_prologue(self):
        prologue = synthesize_prologue("echo hello\n")
        assert prologue.is_empty()

    def test_prologue_script_is_parseable(self):
        from repro.shell import parse

        prologue = synthesize_prologue("frobnicate\ncat /etc/x\necho $TOK\n")
        parse(prologue.render())  # must be valid shell


class TestViz:
    FIG1 = 'STEAMROOT="$(cd "${0%/*}" && echo $PWD)"\nrm -fr "$STEAMROOT"/*\n'

    def test_explore_worlds(self):
        views = explore(self.FIG1)
        assert len(views) >= 2
        # some world shows the empty STEAMROOT
        assert any(v.variables.get("STEAMROOT") == "''" for v in views)

    def test_conditions_recorded(self):
        views = explore(self.FIG1)
        all_conditions = [c for v in views for c in v.conditions]
        assert any("cd" in c and "failure" in c for c in all_conditions)

    def test_findings_attached_to_paths(self):
        views = explore(self.FIG1)
        flagged = [v for v in views if v.findings]
        assert flagged

    def test_render_tree(self):
        text = render_tree(self.FIG1)
        assert "execution world" in text
        assert "when" in text

    def test_behaviour_summary(self):
        text = behaviour_summary("touch /a\nrm -f /a\n")
        assert "may create" in text and "may delete" in text

    def test_max_paths_respected(self):
        views = explore(self.FIG1, max_paths=1)
        assert len(views) == 1
