"""The common CLI flags: --version on every entry point (invoked through
``python -m repro.cli``, as installed consoles would), --stats/--trace
availability."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro

REPO_ROOT = Path(__file__).resolve().parents[2]
TOOLS = ["analyze", "lint", "typeof", "monitor", "verify", "mine"]


def run_cli(*args):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(REPO_ROOT),
    )


@pytest.mark.parametrize("tool", TOOLS)
def test_version_flag(tool):
    result = run_cli(tool, "--version")
    assert result.returncode == 0, result.stderr
    assert repro.__version__ in result.stdout
    assert f"repro-{tool}" in result.stdout


@pytest.mark.parametrize("tool", TOOLS)
def test_stats_and_trace_flags_advertised(tool):
    result = run_cli(tool, "--help")
    assert result.returncode == 0, result.stderr
    assert "--stats" in result.stdout
    assert "--trace" in result.stdout
    assert "--version" in result.stdout
