"""Unit tests for the top-level analyzer and annotations."""

import pytest

from repro.analysis import AnnotationError, analyze, parse_annotations
from repro.diag import Severity


class TestAnalyze:
    def test_clean_script(self):
        report = analyze("echo hello | sort | head -n 3")
        assert report.ok
        assert not report.unsafe

    def test_steam_bug_unsafe(self):
        report = analyze(
            'STEAMROOT="$(cd "${0%/*}" && echo $PWD)"\nrm -fr "$STEAMROOT"/*\n'
        )
        assert report.unsafe
        assert report.has("dangerous-deletion")

    def test_syntax_error_reported(self):
        report = analyze("if true; then")
        assert report.has("syntax-error")
        assert report.unsafe

    def test_render_contains_summary(self):
        text = analyze("echo hi").render()
        assert "error(s)" in text and "state(s)" in text

    def test_lint_merge(self):
        report = analyze("rm $FILE", include_lint=True)
        assert any(d.source == "lint" for d in report.diagnostics)

    def test_no_lint_by_default(self):
        report = analyze("rm $FILE")
        assert not any(d.source == "lint" for d in report.diagnostics)

    def test_severity_buckets(self):
        report = analyze('rm -rf /\n')
        assert report.errors()
        assert all(d.severity is Severity.ERROR for d in report.errors())


class TestAnnotations:
    def test_var_named_type(self):
        annotations = parse_annotations("# @var X : path\necho $X")
        assert "X" in annotations.variables
        assert annotations.variables["X"].matches("/a/b")

    def test_var_inline_regex(self):
        annotations = parse_annotations("# @var V : [0-9]+\n")
        assert annotations.variables["V"].matches("42")
        assert not annotations.variables["V"].matches("x")

    def test_args(self):
        assert parse_annotations("# @args 3\n").n_args == 3

    def test_platforms(self):
        assert parse_annotations("# @platforms linux macos\n").platforms == [
            "linux",
            "macos",
        ]

    def test_type_annotation(self):
        annotations = parse_annotations("# @type frob :: .* -> [0-9]+\n")
        assert "frob" in annotations.signatures

    def test_bad_annotation_raises(self):
        with pytest.raises(AnnotationError):
            parse_annotations("# @nonsense stuff\n")

    def test_bad_regex_raises(self):
        with pytest.raises(AnnotationError):
            parse_annotations("# @var X : [unclosed\n")

    def test_plain_comments_ignored(self):
        annotations = parse_annotations("# just a comment\n#!/bin/sh\n")
        assert annotations.is_empty()


class TestAnnotationsDriveAnalysis:
    def test_var_constraint_used(self):
        # constrained to a subdirectory-shaped path: deletion is deep
        source = '# @var TARGET : /opt/[a-z]+/[a-z]+\nrm -rf "$TARGET"\n'
        report = analyze(source)
        assert not report.has("dangerous-deletion")

    def test_unconstrained_var_flags(self):
        report = analyze('TARGET=$1\nrm -rf "$TARGET"\n', n_args=1)
        assert report.has("dangerous-deletion")

    def test_args_annotation_controls_params(self):
        report = analyze('# @args 1\nrm -rf "$1"\n')
        assert report.has("dangerous-deletion")

    def test_platforms_annotation_enables_checks(self):
        report = analyze("# @platforms macos\nsed -i s/a/b/ f\n")
        assert report.has("platform-flag")

    def test_type_annotation_overrides_pipeline(self):
        # annotate an unknown command so the pipeline becomes typeable
        source = (
            "# @type frobnicate :: .* -> [0-9]+\n"
            "frobnicate | sort -n\n"
        )
        report = analyze(source)
        assert not report.has("untyped-command")

    def test_type_annotation_catches_mismatch(self):
        source = (
            "# @type frobnicate :: .* -> [a-z]+\n"
            "frobnicate | sort -g\n"
        )
        report = analyze(source)
        assert report.has("stream-type-error")
