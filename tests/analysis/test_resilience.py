"""Resource budgets, degradation semantics, and checker fault isolation."""

import pytest

from repro.analysis import analyze
from repro.analysis.resilience import (
    HARD_DFA_STATE_CAP,
    AnalysisBudgetExceeded,
    GuardedChecker,
    ResourceBudget,
    exception_digest,
    get_budget,
    guard_checkers,
    internal_error_diagnostic,
    quarantine_diagnostic,
    use_budget,
)
from repro.diag import Severity
from repro.obs import TraceRecorder, use_recorder

BRANCHY = "\n".join(
    f"if test -f /srv/f{i}; then echo {i}; fi" for i in range(30)
)


class TestResourceBudget:
    def test_unlimited_by_default(self):
        budget = ResourceBudget()
        for _ in range(1000):
            budget.charge_state()
        budget.check_deadline("symex")
        budget.check_dfa_states(10**9)

    def test_state_cap_trips_past_limit(self):
        budget = ResourceBudget(max_states=5)
        for _ in range(5):
            budget.charge_state()
        with pytest.raises(AnalysisBudgetExceeded) as exc:
            budget.charge_state()
        assert exc.value.budget == "states"
        assert exc.value.phase == "symex"

    def test_deadline_trips(self):
        budget = ResourceBudget(deadline=0.0)
        with pytest.raises(AnalysisBudgetExceeded) as exc:
            budget.check_deadline("symex")
        assert exc.value.budget == "deadline"

    def test_dfa_cap_trips(self):
        budget = ResourceBudget(max_dfa_states=10)
        budget.check_dfa_states(10)
        with pytest.raises(AnalysisBudgetExceeded) as exc:
            budget.check_dfa_states(11, "rlang.product")
        assert exc.value.budget == "dfa-states"
        assert exc.value.phase == "rlang.product"

    def test_start_rearms_meters(self):
        budget = ResourceBudget(max_states=3)
        for _ in range(3):
            budget.charge_state()
        budget.start()
        for _ in range(3):
            budget.charge_state()  # does not trip: meter was reset

    def test_trips_are_counted(self):
        recorder = TraceRecorder()
        budget = ResourceBudget(max_states=1)
        with use_recorder(recorder):
            budget.charge_state()
            with pytest.raises(AnalysisBudgetExceeded):
                budget.charge_state()
        assert recorder.counter("budget.states") == 1

    def test_tightened_halves_and_bounds_everything(self):
        tight = ResourceBudget(deadline=8.0, max_states=1000).tightened()
        assert tight.deadline == 4.0
        assert tight.max_states == 500
        # unset limits acquire conservative defaults: a retry is always bounded
        assert tight.max_dfa_states is not None
        assert tight.max_depth is not None
        fully_default = ResourceBudget().tightened()
        assert fully_default.deadline is not None
        assert fully_default.max_states is not None

    def test_active_budget_registry_nests(self):
        outer, inner = ResourceBudget(), ResourceBudget()
        assert get_budget() is None
        with use_budget(outer):
            assert get_budget() is outer
            with use_budget(inner):
                assert get_budget() is inner
            assert get_budget() is outer
        assert get_budget() is None

    def test_hard_dfa_cap_is_unconditional(self):
        from repro.analysis.resilience import enforce_dfa_cap

        enforce_dfa_cap(HARD_DFA_STATE_CAP)
        with pytest.raises(AnalysisBudgetExceeded):
            enforce_dfa_cap(HARD_DFA_STATE_CAP + 1)


class TestDiagnostics:
    def test_exception_digest_is_stable_and_short(self):
        first = exception_digest(ValueError("boom"))
        second = exception_digest(ValueError("boom"))
        assert first == second
        assert "ValueError" in first and "boom" in first

    def test_exception_digest_truncates_long_messages(self):
        digest = exception_digest(ValueError("x" * 500))
        assert len(digest) < 160

    def test_internal_error_diagnostic_shape(self):
        diag = internal_error_diagnostic("checker 'x'", RuntimeError("bad"))
        assert diag.code == "internal-error"
        assert diag.severity is Severity.INFO
        assert diag.always
        assert "checker 'x'" in diag.message

    def test_quarantine_diagnostic_mentions_both_failures(self):
        diag = quarantine_diagnostic(OSError("worker died"), ValueError("again"))
        assert diag.code == "analysis-quarantined"
        assert "worker died" in diag.message and "again" in diag.message


class _CrashingChecker:
    name = "crasher"

    def __init__(self):
        self.calls = 0

    def on_command(self, state, node, argv, spec):
        self.calls += 1
        raise RuntimeError("checker bug")

    def finish(self, states):
        return []


class TestGuardedChecker:
    def test_crash_becomes_internal_error_diag(self):
        checkers = guard_checkers([_CrashingChecker()])
        report = analyze("echo one\necho two\n", checkers=checkers)
        assert report.has("internal-error")
        assert report.degraded

    def test_checker_disabled_after_first_crash(self):
        inner = _CrashingChecker()
        [guarded] = guard_checkers([inner])
        analyze("echo one\necho two\necho three\n", checkers=[guarded])
        assert inner.calls == 1
        assert guarded.disabled

    def test_faults_are_counted(self):
        recorder = TraceRecorder()
        with use_recorder(recorder):
            analyze("echo hi", checkers=guard_checkers([_CrashingChecker()]))
        assert recorder.counter("checker.faults") == 1

    def test_budget_exhaustion_propagates_through_guard(self):
        class Budgeted:
            name = "budgeted"

            def on_command(self, state, node, argv, spec):
                raise AnalysisBudgetExceeded("symex", "states", "test")

            def finish(self, states):
                return []

        [guarded] = guard_checkers([Budgeted()])
        with pytest.raises(AnalysisBudgetExceeded):
            guarded.on_command(None, None, ["echo"], None)
        assert not guarded.disabled

    def test_guard_is_idempotent(self):
        once = guard_checkers([_CrashingChecker()])
        twice = guard_checkers(once)
        assert twice[0] is once[0]

    def test_other_checkers_still_report(self):
        from repro.checkers import default_checkers

        checkers = default_checkers(isolate=False) + [_CrashingChecker()]
        report = analyze("rm -rf /", checkers=guard_checkers(checkers))
        assert report.has("internal-error")
        assert report.unsafe  # the deletion checker still fired


class TestAnalyzeDegradation:
    def test_state_budget_yields_partial_report(self):
        report = analyze(BRANCHY, budget=ResourceBudget(max_states=5))
        assert report.degraded
        [diag] = report.by_code("analysis-degraded")
        assert diag.severity is Severity.INFO
        assert "states budget" in diag.message
        assert report.paths_explored > 0  # partial progress is reported
        report.render()  # and it renders

    def test_zero_deadline_degrades(self):
        report = analyze(BRANCHY, budget=ResourceBudget(deadline=0.0))
        assert report.degraded
        assert "deadline" in report.by_code("analysis-degraded")[0].message

    def test_depth_bomb_degrades_without_recursion_error(self):
        bomb = "(" * 300 + "echo hi" + ")" * 300
        report = analyze(bomb, budget=ResourceBudget())
        assert report.degraded
        assert "depth" in report.by_code("analysis-degraded")[0].message

    def test_depth_bomb_safe_even_without_budget(self):
        bomb = "$(" * 200 + "echo hi" + ")" * 200
        report = analyze(bomb)
        assert report.degraded
        report.render()

    def test_unbudgeted_analysis_unchanged(self):
        report = analyze(BRANCHY)
        assert not report.degraded
        assert not report.by_code("analysis-degraded")

    def test_degradations_counted(self):
        recorder = TraceRecorder()
        with use_recorder(recorder):
            analyze(BRANCHY, budget=ResourceBudget(max_states=5))
        assert recorder.counter("analyze.degraded") == 1

    def test_internal_crash_becomes_report(self, monkeypatch):
        from repro.analysis import analyzer as analyzer_mod

        class ExplodingEngine:
            def __init__(self, *args, **kwargs):
                raise RuntimeError("engine exploded")

        monkeypatch.setattr(analyzer_mod, "Engine", ExplodingEngine)
        recorder = TraceRecorder()
        with use_recorder(recorder):
            report = analyze("echo hi")
        assert report.has("internal-error")
        assert recorder.counter("analyze.internal_errors") == 1
        report.render()

    def test_lint_crash_is_isolated(self, monkeypatch):
        from repro.analysis import analyzer as analyzer_mod

        def exploding_lint(source):
            raise RuntimeError("lint exploded")

        monkeypatch.setattr(analyzer_mod, "run_lint", exploding_lint)
        report = analyze("echo hi", include_lint=True)
        assert report.has("internal-error")
        assert report.states == 1  # the semantic phase still completed
