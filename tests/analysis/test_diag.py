"""Unit tests for the diagnostics module and report rendering."""

from repro.diag import Diagnostic, Severity, dedupe
from repro.shell.tokens import Position


def diag(code="x", message="m", severity=Severity.WARNING, line=1, always=False):
    return Diagnostic(
        code=code,
        message=message,
        severity=severity,
        pos=Position(line, 1),
        always=always,
    )


class TestSeverity:
    def test_ordering(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR
        assert not (Severity.ERROR < Severity.INFO)

    def test_total_ordering(self):
        """Regression: >=, >, <= must all work (functools.total_ordering),
        not only the hand-written __lt__."""
        assert Severity.ERROR >= Severity.WARNING
        assert Severity.ERROR > Severity.INFO
        assert Severity.INFO <= Severity.INFO
        assert Severity.WARNING >= Severity.WARNING
        assert not (Severity.INFO >= Severity.ERROR)

    def test_sorted_and_extrema(self):
        unsorted = [Severity.ERROR, Severity.INFO, Severity.WARNING]
        assert sorted(unsorted) == [
            Severity.INFO,
            Severity.WARNING,
            Severity.ERROR,
        ]
        assert max(unsorted) is Severity.ERROR
        assert min(unsorted) is Severity.INFO

    def test_sort_diagnostics_by_severity(self):
        diags = [
            diag(code="a", severity=Severity.INFO),
            diag(code="b", severity=Severity.ERROR),
            diag(code="c", severity=Severity.WARNING),
        ]
        ranked = sorted(diags, key=lambda d: d.severity, reverse=True)
        assert [d.code for d in ranked] == ["b", "c", "a"]

    def test_comparison_with_other_types_raises(self):
        import pytest

        with pytest.raises(TypeError):
            Severity.INFO < "warning"


class TestDiagnostic:
    def test_render_contains_parts(self):
        text = diag(code="dead-stream", message="gone", always=True).render()
        assert "dead-stream" in text
        assert "always" in text
        assert "gone" in text

    def test_render_may_modality(self):
        assert "(may)" in diag().render()

    def test_witness_rendered(self):
        d = Diagnostic(code="c", message="m", witness="/tmp/x")
        assert "/tmp/x" in d.render()


class TestDedupe:
    def test_drops_duplicates(self):
        items = [diag(), diag(), diag(code="other")]
        assert len(dedupe(items)) == 2

    def test_prefers_always(self):
        items = [diag(always=False), diag(always=True)]
        [kept] = dedupe(items)
        assert kept.always

    def test_keeps_distinct_positions(self):
        items = [diag(line=1), diag(line=2)]
        assert len(dedupe(items)) == 2

    def test_order_stable(self):
        items = [diag(code="b"), diag(code="a")]
        assert [d.code for d in dedupe(items)] == ["b", "a"]


class TestReportRendering:
    def test_sorted_by_position(self):
        from repro.analysis.report import Report

        report = Report(
            source="",
            diagnostics=[diag(code="late", line=9), diag(code="early", line=2)],
        )
        text = report.render()
        assert text.index("early") < text.index("late")

    def test_min_severity_filter(self):
        from repro.analysis.report import Report

        report = Report(
            source="",
            diagnostics=[
                diag(code="noise", severity=Severity.INFO),
                diag(code="real", severity=Severity.ERROR),
            ],
        )
        text = report.render(min_severity=Severity.ERROR)
        assert "real" in text and "noise" not in text

    def test_summary_line(self):
        from repro.analysis.report import Report

        report = Report(source="", diagnostics=[diag(severity=Severity.ERROR)])
        assert "1 error(s)" in report.render()
