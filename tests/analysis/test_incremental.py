"""Fragment-level incremental analysis: summaries, invalidation, and
the byte-identity guarantee.

The contract under test (ISSUE 10 / ROADMAP item 2): after editing one
function body in a multi-function script, re-analysis re-explores only
that fragment plus its dependence-graph dependents — asserted on the
``incremental.fragments.*`` counters — and every report produced
through the memo renders byte-identically to a cold analysis, races
included.
"""

import pytest

from repro.analysis import analyze
from repro.analysis.cache import FragmentCache
from repro.analysis.incremental import (
    FragmentMemo,
    IncrementalSession,
    split_fragments,
)
from repro.obs import TraceRecorder, use_recorder


#: five functions with a RAW chain: setup -> build -> test_it, plus a
#: WAW pair (setup/cleanup on the ready file) and an independent leaf
PIPELINE = """#!/bin/sh
setup() {
  mkdir -p /var/app
  echo ready > /var/app/ready
}
build() {
  cat /var/app/ready
  cp src.tar /var/app/src.tar
}
test_it() {
  [ -f /var/app/src.tar ] && echo ok
}
cleanup() {
  rm -f /var/app/ready
}
report() {
  echo done
}
setup
build
test_it
cleanup
report
"""


def _counters(run):
    recorder = TraceRecorder()
    with use_recorder(recorder):
        result = run()
    snap = recorder.snapshot()
    return result, snap.counters


class TestSplitFragments:
    def test_five_functions_found(self):
        table = split_fragments(PIPELINE)
        assert [f.name for f in table.fragments] == [
            "setup", "build", "test_it", "cleanup", "report",
        ]

    def test_fragment_digest_tracks_body_edits(self):
        before = split_fragments(PIPELINE).digests()
        after = split_fragments(
            PIPELINE.replace("echo done", "echo all done")
        ).digests()
        changed = {k for k in before if before[k] != after.get(k)}
        assert changed == {"report@16"}

    def test_residue_digest_tracks_toplevel_edits(self):
        before = split_fragments(PIPELINE).digests()
        after = split_fragments(PIPELINE.replace("\nreport\n", "\n")).digests()
        assert before["<residue>"] != after["<residue>"]
        # function digests untouched
        for key in before:
            if key != "<residue>":
                assert before[key] == after[key]

    def test_moved_fragment_changes_digest(self):
        # positions feed diagnostics, so a shifted body must re-run
        before = split_fragments(PIPELINE).digests()
        after = split_fragments("\n" + PIPELINE).digests()
        assert all(before[k] != v for k, v in after.items() if k in before)

    def test_scripts_without_functions_have_only_residue(self):
        table = split_fragments("echo one\necho two\n")
        assert table.fragments == []


class TestSessionReuse:
    def test_cold_then_warm_all_hits(self):
        sess = IncrementalSession()
        _, cold = _counters(lambda: sess.analyze(PIPELINE, path="p.sh"))
        _, warm = _counters(lambda: sess.analyze(PIPELINE, path="p.sh"))
        assert cold.get("incremental.fragments.miss", 0) > 0
        assert cold.get("incremental.fragments.hit", 0) == 0
        assert warm.get("incremental.fragments.miss", 0) == 0
        assert warm["incremental.fragments.hit"] == cold[
            "incremental.fragments.miss"
        ]

    def test_leaf_edit_reruns_only_that_fragment(self):
        sess = IncrementalSession()
        sess.analyze(PIPELINE, path="p.sh")
        edited = PIPELINE.replace("echo done", "echo all done")
        _, counters = _counters(lambda: sess.analyze(edited, path="p.sh"))
        # report is called from one state only -> exactly one miss
        assert counters["incremental.fragments.miss"] == 1
        assert counters["incremental.fragments.invalidated"] == 1
        assert counters.get("incremental.fragments.hit", 0) > 0

    def test_upstream_edit_invalidates_dependents(self):
        sess = IncrementalSession()
        sess.analyze(PIPELINE, path="p.sh")
        idx = sess._index["p.sh"]
        # the dependence edges the invalidation walks
        assert "build@6" in idx.dependents["setup@2"]
        assert "test_it@10" in idx.dependents["build@6"]
        edited = PIPELINE.replace("echo ready", "printf ready")
        _, counters = _counters(lambda: sess.analyze(edited, path="p.sh"))
        invalidated = set(sess.last_invalidated)
        assert "setup@2" in invalidated
        assert "build@6" in invalidated        # RAW on /var/app/ready
        assert "test_it@10" in invalidated     # RAW on /var/app/src.tar
        assert counters["incremental.fragments.invalidated"] == len(invalidated)

    def test_independent_leaf_not_invalidated_by_upstream_edit(self):
        sess = IncrementalSession()
        sess.analyze(PIPELINE, path="p.sh")
        edited = PIPELINE.replace("echo ready", "printf ready")
        sess.analyze(edited, path="p.sh")
        assert "report@16" not in set(sess.last_invalidated)

    def test_forget_drops_path_state(self):
        sess = IncrementalSession()
        sess.analyze(PIPELINE, path="p.sh")
        assert "p.sh" in sess._index
        sess.forget("p.sh")
        assert "p.sh" not in sess._index


class TestByteIdentity:
    """The hard invariant: memoized runs render exactly like cold runs."""

    @pytest.mark.parametrize("races", [True, False])
    def test_warm_report_byte_identical(self, races):
        from repro.analysis.batch import BatchConfig

        config = BatchConfig(races=races)
        cold = analyze(PIPELINE, **config.analyze_kwargs())
        sess = IncrementalSession(config=config)
        sess.analyze(PIPELINE, path="p.sh")
        warm = sess.analyze(PIPELINE, path="p.sh")
        assert warm.render() == cold.render()
        assert warm.to_dict() == cold.to_dict()

    def test_edited_report_byte_identical(self):
        edited = PIPELINE.replace("cat /var/app/ready", "head /var/app/ready")
        sess = IncrementalSession()
        sess.analyze(PIPELINE, path="p.sh")
        warm = sess.analyze(edited, path="p.sh")
        assert warm.render() == analyze(edited).render()

    def test_background_race_report_byte_identical(self):
        # races exercise the effect graph: replayed states must carry
        # correctly remapped fs events and region ids
        src = (
            "produce() { echo x > /tmp/shared; }\n"
            "consume() { cat /tmp/shared; }\n"
            "produce &\n"
            "consume\n"
            "wait\n"
        )
        cold = analyze(src).render()
        sess = IncrementalSession()
        sess.analyze(src, path="r.sh")
        warm = sess.analyze(src, path="r.sh")
        assert warm.render() == cold

    def test_symbolic_arguments_byte_identical(self):
        # unknown argv: entry fingerprints cover symbolic params
        src = (
            'target() { rm -rf "$1"; }\n'
            'main() { target "$1"; }\n'
            'main "$1"\n'
        )
        cold = analyze(src).render()
        sess = IncrementalSession()
        sess.analyze(src, path="a.sh")
        warm = sess.analyze(src, path="a.sh")
        assert warm.render() == cold

    def test_command_substitution_byte_identical(self):
        src = (
            "gen() { echo /tmp/workdir; }\n"
            "use() { d=$(gen); rm -rf \"$d\"; }\n"
            "use\n"
        )
        cold = analyze(src).render()
        sess = IncrementalSession()
        sess.analyze(src, path="c.sh")
        warm = sess.analyze(src, path="c.sh")
        assert warm.render() == cold

    def test_recursive_function_byte_identical(self):
        src = (
            "walk_down() { [ -d \"$1\" ] && walk_down \"$1/sub\"; }\n"
            "walk_down /srv\n"
        )
        cold = analyze(src).render()
        sess = IncrementalSession()
        sess.analyze(src, path="rec.sh")
        warm = sess.analyze(src, path="rec.sh")
        assert warm.render() == cold


class TestMemoSafety:
    def test_nested_definitions_bail(self):
        # a body that defines functions is never memoized
        src = (
            "outer() { inner() { echo hi; }; inner; }\n"
            "outer\nouter\n"
        )
        sess = IncrementalSession()
        _, c1 = _counters(lambda: sess.analyze(src, path="n.sh"))
        _, c2 = _counters(lambda: sess.analyze(src, path="n.sh"))
        assert c1.get("incremental.fragments.hit", 0) == 0
        assert c2.get("incremental.fragments.hit", 0) == 0
        assert sess.analyze(src).render() == analyze(src).render()

    def test_dynamic_binding_calls_current_definition(self):
        # redefinition between calls: the memo key includes the closure
        # bindings, so each call memoizes against its own callee body
        src = (
            "helper() { echo a; }\n"
            "driver() { helper; }\n"
            "driver\n"
            "helper() { rm -rf \"$HOME/\"; }\n"
            "driver\n"
        )
        cold = analyze(src)
        sess = IncrementalSession()
        sess.analyze(src, path="d.sh")
        warm = sess.analyze(src, path="d.sh")
        assert warm.render() == cold.render()
        assert "dangerous-deletion" in [d.code for d in warm.diagnostics]

    def test_custom_checkers_disable_the_memo(self):
        sess = IncrementalSession()
        _, counters = _counters(
            lambda: analyze(PIPELINE, checkers=[], incremental=sess)
        )
        assert counters.get("incremental.fragments.miss", 0) == 0
        assert counters.get("incremental.fragments.hit", 0) == 0

    def test_reanalyze_span_recorded(self):
        sess = IncrementalSession()
        recorder = TraceRecorder()
        with use_recorder(recorder):
            sess.analyze(PIPELINE, path="p.sh")
        assert any(
            span.name == "incremental.reanalyze"
            for span in recorder.iter_spans()
        )


class TestFragmentCache:
    def test_lru_eviction_bounds_entries(self):
        cache = FragmentCache(max_entries=2)
        cache.put(("a",), "A", digest="da")
        cache.put(("b",), "B", digest="db")
        cache.put(("c",), "C", digest="dc")
        assert len(cache) == 2
        assert cache.get(("a",)) is None
        assert cache.get(("c",)) == "C"

    def test_get_refreshes_recency(self):
        cache = FragmentCache(max_entries=2)
        cache.put(("a",), "A", digest="da")
        cache.put(("b",), "B", digest="db")
        cache.get(("a",))
        cache.put(("c",), "C", digest="dc")
        assert cache.get(("a",)) == "A"
        assert cache.get(("b",)) is None

    def test_invalidate_digest_evicts_all_entries_of_a_fragment(self):
        cache = FragmentCache()
        cache.put(("a", 1), "A1", digest="da")
        cache.put(("a", 2), "A2", digest="da")
        cache.put(("b", 1), "B1", digest="db")
        assert cache.invalidate_digest("da") == 2
        assert cache.get(("a", 1)) is None
        assert cache.get(("a", 2)) is None
        assert cache.get(("b", 1)) == "B1"

    def test_eviction_counter(self):
        recorder = TraceRecorder()
        with use_recorder(recorder):
            cache = FragmentCache(max_entries=1)
            cache.put(("a",), "A", digest="da")
            cache.put(("b",), "B", digest="db")
        assert recorder.counter("incremental.fragments.evicted") == 1

    def test_shared_cache_across_sessions(self):
        shared = FragmentCache()
        s1 = IncrementalSession(fragment_cache=shared)
        s2 = IncrementalSession(fragment_cache=shared)
        _, c1 = _counters(lambda: s1.analyze(PIPELINE, path="p.sh"))
        _, c2 = _counters(lambda: s2.analyze(PIPELINE, path="p.sh"))
        assert c1.get("incremental.fragments.miss", 0) > 0
        assert c2.get("incremental.fragments.miss", 0) == 0
