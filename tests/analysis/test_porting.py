"""Unit tests for automatic platform porting (§5)."""

from repro.analysis import analyze
from repro.analysis.fixes import port_script


class TestPortScript:
    def test_sed_i_rewritten(self):
        result = port_script("sed -i s/a/b/ file.txt\n")
        assert "sed s/a/b/ file.txt > file.txt.tmp" in result.source
        assert "mv file.txt.tmp file.txt" in result.source

    def test_readlink_f(self):
        result = port_script("ROOT=$(readlink -f .)\n")
        assert "realpath" in result.source
        assert "readlink" not in result.source

    def test_date_iso(self):
        result = port_script("STAMP=$(date -I)\n")
        assert "date +%F" in result.source

    def test_ls_color_dropped(self):
        result = port_script("ls --color=auto /tmp\n")
        assert "--color" not in result.source

    def test_grep_p_simple_pattern(self):
        result = port_script("grep -P 'abc' f\n")
        assert "grep -E" in result.source

    def test_grep_p_perl_pattern_kept(self):
        result = port_script("grep -P 'a(?=b)' f\n")
        assert "grep -P" in result.source
        assert result.unresolved

    def test_unresolvable_reported(self):
        result = port_script("date -d yesterday\n")
        assert not result.fully_portable
        assert any("date -d" in u for u in result.unresolved)

    def test_ported_script_passes_platform_check(self):
        source = "sed -i s/a/b/ f.txt\nROOT=$(readlink -f .)\n"
        result = port_script(source, target="macos")
        assert result.fully_portable
        report = analyze(result.source, platform_targets=["macos"])
        assert not report.has("platform-flag")

    def test_ported_script_still_parses(self):
        from repro.shell import parse

        result = port_script("sed -i s/a/b/ f\nls --color x\n")
        parse(result.source)

    def test_portable_input_untouched(self):
        source = "grep x f | sort | head -n 2\n"
        result = port_script(source)
        assert result.source == source
        assert not result.rewrites


class TestUnreachableChecker:
    def test_code_after_exit(self):
        report = analyze("exit 1\nrm -rf /x\n")
        assert report.has("unreachable-command")

    def test_conditional_exit_ok(self):
        report = analyze("if [ -f /x ]; then exit 1; fi\necho on\n")
        assert not report.has("unreachable-command")

    def test_code_after_guaranteed_abort(self):
        report = analyze('X=1\nunset X\nset -u\necho "$X"\necho never\n')
        assert report.has("unreachable-command")
