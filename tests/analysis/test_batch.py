"""Batch analysis driver and the persistent result cache."""

import json
import os

import pytest

from repro import cli
from repro.analysis import (
    BatchConfig,
    Report,
    ResultCache,
    analyze,
    cache_key,
    discover,
    run_batch,
)
from repro.diag import Severity
from repro.obs import TraceRecorder, use_recorder


@pytest.fixture
def corpus(tmp_path):
    scripts = tmp_path / "scripts"
    scripts.mkdir()
    (scripts / "ok.sh").write_text("echo hello\n")
    (scripts / "warn.sh").write_text("mkdir /opt/x\n")
    (scripts / "bad.sh").write_text("rm -rf /\n")
    nested = scripts / "nested"
    nested.mkdir()
    (nested / "inner.sh").write_text("pwd\n")
    return scripts


class TestDiscover:
    def test_directory_walk_recursive_sorted(self, corpus):
        paths = discover([str(corpus)])
        names = [os.path.basename(p) for p in paths]
        # sorted by full path: nested/inner.sh lands between bad and ok
        assert names == ["bad.sh", "inner.sh", "ok.sh", "warn.sh"]

    def test_explicit_file_any_extension(self, tmp_path):
        script = tmp_path / "deploy"
        script.write_text("echo hi\n")
        assert discover([str(script)]) == [str(script)]

    def test_glob_pattern(self, corpus):
        paths = discover([str(corpus / "*.sh")])
        assert len(paths) == 3

    def test_deduplication(self, corpus):
        once = discover([str(corpus)])
        twice = discover([str(corpus), str(corpus / "ok.sh")])
        assert once == twice

    def test_missing_input_is_empty(self, tmp_path):
        assert discover([str(tmp_path / "nope")]) == []


class TestSerializationRoundTrip:
    CASES = [
        "echo hello",
        "rm -rf /",
        "mkdir /opt/x\nmkdir /opt/x\n",
        "grep foo file > file",
        "cmd > f &\ngrep x f\n",  # race hazards with related entries
        "if [ -f /etc/x ]; then rm /etc/x; fi",
        "tmp=$(mktemp); rm \"$tmp\"",
    ]

    @pytest.mark.parametrize("source", CASES)
    def test_render_byte_identical(self, source):
        report = analyze(source)
        restored = Report.from_dict(report.to_dict())
        assert restored.render() == report.render()
        assert restored.render(Severity.ERROR) == report.render(Severity.ERROR)

    def test_race_related_entries_survive(self):
        report = analyze("cmd > f &\ngrep x f\n")
        assert report.races(), "fixture should produce race hazards"
        restored = Report.from_dict(report.to_dict())
        [orig] = report.by_code("race-read-write")
        [back] = restored.by_code("race-read-write")
        assert back.related == orig.related
        assert back.pos.line == orig.pos.line and back.pos.col == orig.pos.col

    def test_dict_is_json_safe(self):
        report = analyze("rm -rf /")
        text = json.dumps(report.to_dict())
        assert Report.from_dict(json.loads(text)).render() == report.render()

    def test_counts_preserved(self):
        report = analyze("if [ -f /x ]; then echo a; else echo b; fi")
        restored = Report.from_dict(report.to_dict())
        assert restored.paths_explored == report.paths_explored
        assert restored.paths_merged == report.paths_merged
        assert restored.states == report.states
        assert restored.truncations == report.truncations


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        key = cache_key("echo hi", "cfg")
        assert cache.get(key) is None
        data = analyze("echo hi").to_dict()
        assert cache.put(key, data)
        assert cache.get(key) == data

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        key = cache_key("echo hi", "cfg")
        cache.put(key, analyze("echo hi").to_dict())
        path = cache.path_for(key)
        with open(path, "w") as handle:
            handle.write("{not json")
        assert cache.get(key) is None

    def test_key_depends_on_source(self):
        assert cache_key("echo a", "cfg") != cache_key("echo b", "cfg")

    def test_key_depends_on_config(self):
        assert cache_key("echo a", "cfg1") != cache_key("echo a", "cfg2")

    def test_config_fingerprint_covers_options(self):
        base = BatchConfig()
        assert base.fingerprint() != BatchConfig(races=False).fingerprint()
        assert base.fingerprint() != BatchConfig(max_loop=3).fingerprint()
        assert base.fingerprint() != BatchConfig(include_lint=True).fingerprint()

    def test_fingerprint_excludes_budget_options(self):
        # completed reports are budget-independent, and degraded ones are
        # never cached — so budget options must NOT invalidate entries
        base = BatchConfig()
        assert base.fingerprint() == BatchConfig(timeout=5.0).fingerprint()
        assert base.fingerprint() == BatchConfig(max_states=100).fingerprint()


class TestCacheCorruption:
    """Every corruption class degrades to a miss — never an exception."""

    def _primed(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        key = cache_key("echo hi", "cfg")
        assert cache.put(key, analyze("echo hi").to_dict())
        return cache, key

    def test_truncated_json_is_a_miss(self, tmp_path):
        cache, key = self._primed(tmp_path)
        with open(cache.path_for(key), "r+") as handle:
            content = handle.read()
            handle.seek(0)
            handle.truncate()
            handle.write(content[: len(content) // 2])
        assert cache.get(key) is None

    def test_schema_version_mismatch_is_a_miss(self, tmp_path):
        cache, key = self._primed(tmp_path)
        data = cache.get(key)
        data["schema"] = Report.SCHEMA_VERSION + 1
        with open(cache.path_for(key), "w") as handle:
            json.dump(data, handle)
        assert cache.get(key) is None

    def test_schema_version_mismatch_is_counted(self, tmp_path):
        # a partial upgrade (old writer, new reader sharing a cache dir)
        # must read as a *visible* miss, not raise in from_dict
        from repro.obs import TraceRecorder, use_recorder

        cache, key = self._primed(tmp_path)
        data = cache.get(key)
        data["schema"] = Report.SCHEMA_VERSION - 1
        with open(cache.path_for(key), "w") as handle:
            json.dump(data, handle)
        recorder = TraceRecorder()
        with use_recorder(recorder):
            assert cache.get(key) is None
        assert recorder.counter("batch.cache.schema_miss") == 1
        assert recorder.counter("batch.cache.corrupt") == 0

    def test_non_dict_entry_is_a_miss(self, tmp_path):
        cache, key = self._primed(tmp_path)
        with open(cache.path_for(key), "w") as handle:
            json.dump(["not", "a", "report"], handle)
        assert cache.get(key) is None

    def test_unwritable_root_put_returns_false(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where the cache dir should be")
        cache = ResultCache(str(blocker))
        key = cache_key("echo hi", "cfg")
        assert cache.put(key, analyze("echo hi").to_dict()) is False
        assert cache.get(key) is None

    def test_corruption_counts_as_misses_in_batch(self, corpus, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        run_batch([str(corpus)], jobs=1, cache=cache)
        for dirpath, _, filenames in os.walk(cache.root):
            for name in filenames:
                with open(os.path.join(dirpath, name), "w") as handle:
                    handle.write("{truncated")
        recorder = TraceRecorder()
        with use_recorder(recorder):
            batch = run_batch([str(corpus)], jobs=1, cache=cache)
        assert recorder.counter("batch.cache.miss") == 4
        assert recorder.counter("batch.cache.hit") == 0
        assert len(batch.results) == 4

    def test_unwritable_root_counts_misses_and_completes(self, corpus, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        cache = ResultCache(str(blocker))
        recorder = TraceRecorder()
        with use_recorder(recorder):
            batch = run_batch([str(corpus)], jobs=1, cache=cache)
        assert recorder.counter("batch.cache.miss") == 4
        assert recorder.counter("batch.cache.store") == 0
        assert len(batch.results) == 4


class TestRunBatch:
    def test_cold_run_analyzes_everything(self, corpus, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        recorder = TraceRecorder()
        with use_recorder(recorder):
            batch = run_batch([str(corpus)], jobs=1, cache=cache)
        assert len(batch.results) == 4
        assert recorder.counter("batch.cache.miss") == 4
        assert recorder.counter("batch.cache.hit") == 0
        assert recorder.counter("batch.cache.store") == 4
        assert recorder.counter("symex.runs") == 4

    def test_warm_run_is_all_hits_and_no_symex(self, corpus, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        cold = run_batch([str(corpus)], jobs=1, cache=cache)
        recorder = TraceRecorder()
        with use_recorder(recorder):
            warm = run_batch([str(corpus)], jobs=1, cache=cache)
        assert recorder.counter("batch.cache.hit") == 4
        assert recorder.counter("batch.cache.miss") == 0
        # the acceptance bar: a warm rerun does ZERO symbolic execution
        assert recorder.counter("symex.runs") == 0
        assert warm.render() == cold.render()

    def test_editing_a_file_invalidates_only_it(self, corpus, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        run_batch([str(corpus)], jobs=1, cache=cache)
        (corpus / "ok.sh").write_text("echo changed\n")
        recorder = TraceRecorder()
        with use_recorder(recorder):
            run_batch([str(corpus)], jobs=1, cache=cache)
        assert recorder.counter("batch.cache.hit") == 3
        assert recorder.counter("batch.cache.miss") == 1

    def test_config_change_invalidates(self, corpus, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        run_batch([str(corpus)], config=BatchConfig(), jobs=1, cache=cache)
        recorder = TraceRecorder()
        with use_recorder(recorder):
            run_batch(
                [str(corpus)],
                config=BatchConfig(max_loop=3),
                jobs=1,
                cache=cache,
            )
        assert recorder.counter("batch.cache.hit") == 0

    def test_no_cache_mode(self, corpus):
        recorder = TraceRecorder()
        with use_recorder(recorder):
            batch = run_batch([str(corpus)], jobs=1, cache=None)
        assert len(batch.results) == 4
        assert recorder.counter("batch.cache.hit") == 0
        assert recorder.counter("batch.cache.miss") == 0
        assert recorder.counter("symex.runs") == 4

    def test_unsafe_propagates(self, corpus, tmp_path):
        batch = run_batch([str(corpus)], jobs=1)
        assert batch.unsafe  # bad.sh has rm -rf /

    def test_render_has_headers_and_summary(self, corpus):
        batch = run_batch([str(corpus)], jobs=1)
        rendered = batch.render()
        assert "== " in rendered
        assert "4 file(s) analyzed:" in rendered
        assert "file(s) flagged" in rendered

    def test_unreadable_file_reported_not_fatal(self, corpus):
        # a broken symlink: discovered by the walk, unreadable on open
        os.symlink(str(corpus / "gone-target"), str(corpus / "dangling.sh"))
        batch = run_batch([str(corpus)], jobs=1)
        dangling = [r for r in batch.results if "dangling" in r.path]
        assert dangling and dangling[0].report.has("read-error")
        # the rest of the corpus is still analyzed
        assert len(batch.results) == 5

    def test_parallel_matches_serial(self, corpus):
        serial = run_batch([str(corpus)], jobs=1)
        parallel = run_batch([str(corpus)], jobs=4)
        assert parallel.render() == serial.render()


class TestBatchCli:
    def run_tool(self, argv, capsys):
        code = cli.main_analyze(argv)
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_directory_triggers_batch_mode(self, corpus, capsys):
        code, out, _ = self.run_tool([str(corpus), "--no-cache"], capsys)
        assert code == 1  # bad.sh
        assert "== " in out
        assert "file(s) analyzed:" in out

    def test_multiple_files_trigger_batch_mode(self, corpus, capsys):
        code, out, _ = self.run_tool(
            [str(corpus / "ok.sh"), str(corpus / "warn.sh"), "--no-cache"],
            capsys,
        )
        assert code == 0
        assert out.count("== ") == 2

    def test_single_file_keeps_classic_output(self, corpus, capsys):
        code, out, _ = self.run_tool([str(corpus / "ok.sh")], capsys)
        assert code == 0
        assert "== " not in out

    def test_cache_flags_round_trip(self, corpus, tmp_path, capsys):
        cache_dir = str(tmp_path / "clicache")
        argv = [str(corpus), "--cache-dir", cache_dir, "--jobs", "1"]
        _, cold, _ = self.run_tool(argv, capsys)
        _, warm, _ = self.run_tool(argv, capsys)
        assert warm == cold  # byte-identical aggregated output
        assert os.path.isdir(cache_dir)

    def test_stats_shows_hit_rate_on_stderr(self, corpus, tmp_path, capsys):
        cache_dir = str(tmp_path / "clicache")
        argv = [str(corpus), "--cache-dir", cache_dir, "--jobs", "1", "--stats"]
        self.run_tool(argv, capsys)
        _, out, err = self.run_tool(argv, capsys)
        assert "batch.cache.hit" in err
        assert "batch.cache.miss" not in err  # 100% warm
        assert "batch.cache" not in out  # stdout stays byte-comparable

    def test_no_scripts_found(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        code, _, err = self.run_tool([str(empty)], capsys)
        assert code == 2
        assert "no scripts" in err


class TestWorkerMetricsPropagation:
    """Worker-side MetricsSnapshots must cross the process-pool boundary
    and fold into the parent's recorder."""

    def _pool_available(self):
        import concurrent.futures as futures

        try:
            with futures.ProcessPoolExecutor(max_workers=1) as pool:
                return pool.submit(int, 1).result(timeout=60) == 1
        except Exception:
            return False

    def test_pool_worker_returns_a_snapshot_when_traced(self):
        from repro.analysis.batch import _pool_worker

        path, data, seconds, metrics = _pool_worker(
            ("x.sh", "echo worker\n", BatchConfig(), True)
        )
        assert path == "x.sh"
        assert data["diagnostics"] == []
        assert metrics is not None
        assert metrics["counters"].get("symex.runs", 0) >= 1

    def test_pool_worker_skips_telemetry_when_untraced(self):
        from repro.analysis.batch import _pool_worker

        _, _, _, metrics = _pool_worker(("x.sh", "echo worker\n", BatchConfig()))
        assert metrics is None

    def test_pool_run_folds_worker_metrics_into_parent(self, corpus):
        if not self._pool_available():
            pytest.skip("process pools unavailable in this sandbox")
        recorder = TraceRecorder()
        with use_recorder(recorder):
            batch = run_batch([str(corpus)], jobs=2, cache=None)
        assert len(batch.results) == 4
        # symex happened only in the workers, yet the parent recorder
        # sees it: the snapshots crossed the pool boundary
        assert recorder.counter("symex.runs") >= 4
        assert recorder.counter("batch.files") == 4  # parent-side count intact

    def test_inline_and_pool_metrics_agree(self, corpus):
        if not self._pool_available():
            pytest.skip("process pools unavailable in this sandbox")
        inline_rec, pool_rec = TraceRecorder(), TraceRecorder()
        with use_recorder(inline_rec):
            run_batch([str(corpus)], jobs=1, cache=None)
        with use_recorder(pool_rec):
            run_batch([str(corpus)], jobs=2, cache=None)
        assert inline_rec.counter("symex.runs") == pool_rec.counter("symex.runs")
        assert inline_rec.counter("symex.states_explored") == pool_rec.counter(
            "symex.states_explored"
        )
