"""Unit tests for monitor placement planning (§4)."""

from repro.monitor import plan_monitors


class TestPlanMonitors:
    def test_untyped_stage_gets_monitor(self):
        plans = plan_monitors("cat f | extract-ids | sort -g\n")
        assert len(plans) == 1
        plan = plans[0]
        assert plan.command == "extract-ids"
        assert plan.stage == 1

    def test_output_type_from_downstream_bound(self):
        [plan] = plan_monitors("cat f | extract-ids | sort -g\n")
        assert plan.output_type is not None
        assert plan.output_type.admits("0xdeadbeef")
        assert not plan.output_type.admits("garbage!")

    def test_input_type_from_upstream(self):
        [plan] = plan_monitors("lsb_release -a | mystery | wc -l\n")
        assert plan.input_type is not None
        assert plan.input_type.admits("Release:\t12")
        assert not plan.input_type.admits("nonsense")

    def test_fully_typed_pipeline_needs_no_monitor(self):
        assert plan_monitors("grep x f | sort | head -n 3\n") == []

    def test_unbounded_consumer_needs_no_output_check(self):
        [plan] = plan_monitors("cat f | mystery | sort\n")
        # plain sort is ∀α. α -> α: any input is fine, nothing to check
        assert plan.output_type is None

    def test_multiple_untyped_stages(self):
        plans = plan_monitors("cat f | stage-one | stage-two | sort -n\n")
        assert len(plans) == 2
        assert {p.command for p in plans} == {"stage-one", "stage-two"}

    def test_wrapper_command_rewrites_stage(self):
        [plan] = plan_monitors("cat f | extract-ids | sort -g\n")
        wrapper = plan.wrapper_command()
        assert wrapper.startswith("repro-monitor --type")
        assert wrapper.endswith("extract-ids")

    def test_scripts_without_pipelines_need_nothing(self):
        assert plan_monitors("echo hello\nmystery-cmd\n") == []

    def test_plans_found_inside_compounds(self):
        plans = plan_monitors(
            "if true; then cat f | mystery | sort -n; fi\n"
        )
        assert len(plans) == 1

    def test_render(self):
        [plan] = plan_monitors("cat f | mystery | sort -n\n")
        text = plan.render()
        assert "mystery" in text and "stdout ::" in text


class TestExternalAnnotations:
    def test_annotation_file_loaded(self, tmp_path):
        from repro.analysis import analyze

        shared = tmp_path / "repo.shellspec"
        shared.write_text("@var TARGET : /srv/[a-z]+/data\n")
        report = analyze(
            'rm -rf "$TARGET"\n', annotation_files=[str(shared)]
        )
        assert not report.has("dangerous-deletion")

    def test_inline_overrides_external(self, tmp_path):
        from repro.analysis import parse_annotations, load_annotation_file, merge_annotations

        shared = tmp_path / "repo.shellspec"
        shared.write_text("@args 1\n@var X : [0-9]+\n")
        inline = parse_annotations("# @args 3\n")
        merged = merge_annotations(load_annotation_file(str(shared)), inline)
        assert merged.n_args == 3
        assert "X" in merged.variables

    def test_commented_directives_accepted(self, tmp_path):
        from repro.analysis import load_annotation_file

        shared = tmp_path / "x.shellspec"
        shared.write_text("# @var Y : url\n@var Z : hex\n")
        annotations = load_annotation_file(str(shared))
        assert set(annotations.variables) == {"Y", "Z"}
