"""Unit tests for runtime monitoring and the verify policy tool."""

import shutil

import pytest

from repro.monitor import (
    MonitoredStage,
    MonitorViolation,
    PolicyRule,
    StreamMonitor,
    Verdict,
    monitor_subprocess,
    parse_policy,
    run_pipeline,
    verify_script,
)
from repro.rtypes import StreamType


class TestStreamMonitor:
    def test_conforming_lines_pass(self):
        monitor = StreamMonitor(StreamType.of("[0-9]+"))
        out = list(monitor.filter(["1", "22", "333"]))
        assert out == ["1", "22", "333"]
        assert monitor.stats.lines_checked == 3
        assert monitor.stats.violations == 0

    def test_violation_raises(self):
        monitor = StreamMonitor(StreamType.of("[0-9]+"), where="stage 2")
        with pytest.raises(MonitorViolation) as exc_info:
            list(monitor.filter(["1", "oops", "3"]))
        assert "stage 2" in str(exc_info.value)
        assert exc_info.value.lineno == 2

    def test_violation_halts_before_propagation(self):
        """The §4 guarantee: the protected stage never sees the bad line."""
        monitor = StreamMonitor(StreamType.of("[0-9]+"))
        received = []

        def protected(lines):
            for line in lines:
                received.append(line)
                yield line

        with pytest.raises(MonitorViolation):
            run_pipeline(
                [monitor.filter, protected],
                ["1", "2", "bad", "4"],
            )
        assert received == ["1", "2"]

    def test_drop_mode(self):
        monitor = StreamMonitor(StreamType.of("[0-9]+"), on_violation="drop")
        out = list(monitor.filter(["1", "x", "3"]))
        assert out == ["1", "3"]
        assert monitor.stats.violations == 1

    def test_count_mode(self):
        monitor = StreamMonitor(StreamType.of("[a-z]+"), on_violation="count")
        list(monitor.filter(["ok", "NO", "fine"]))
        assert monitor.stats.violations == 1

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            StreamMonitor(StreamType.any(), on_violation="explode")

    def test_monitored_stage_wraps_both_sides(self):
        stage = MonitoredStage(
            stage=lambda lines: (line.upper() for line in lines),
            input_monitor=StreamMonitor(StreamType.of("[a-z]+")),
            output_monitor=StreamMonitor(StreamType.of("[A-Z]+")),
        )
        assert run_pipeline([stage], ["abc", "de"]) == ["ABC", "DE"]

    def test_monitor_subprocess_ok(self):
        if shutil.which("cat") is None:
            pytest.skip("no cat binary")
        out = monitor_subprocess(
            ["cat"], ["alpha", "beta"], StreamType.of("[a-z]+")
        )
        assert out == ["alpha", "beta"]

    def test_monitor_subprocess_violation_kills(self):
        if shutil.which("cat") is None:
            pytest.skip("no cat binary")
        with pytest.raises(MonitorViolation):
            monitor_subprocess(
                ["cat"], ["alpha", "BETA!"], StreamType.of("[a-z]+")
            )


class TestPolicyParsing:
    def test_no_rw(self):
        [rule] = parse_policy(["--no-RW", "~/mine"])
        assert rule.no_read and rule.no_write
        assert rule.path == "~/mine"

    def test_no_w_only(self):
        [rule] = parse_policy(["--no-W", "/etc"])
        assert rule.no_write and not rule.no_read

    def test_multiple_rules(self):
        rules = parse_policy(["--no-RW", "~/a", "--no-R", "/secrets"])
        assert len(rules) == 2

    def test_missing_path_rejected(self):
        with pytest.raises(ValueError):
            parse_policy(["--no-RW"])

    def test_unknown_flag_rejected(self):
        with pytest.raises(ValueError):
            parse_policy(["--no-X", "p"])


class TestVerify:
    """E11: the curl-to-sh scenario (§5)."""

    RULES = [PolicyRule(path="~/mine", no_read=True, no_write=True)]

    def test_clean_installer_allowed(self):
        result = verify_script(
            "mkdir -p /opt/sw\ntouch /opt/sw/done\n", self.RULES
        )
        assert result.verdict is Verdict.ALLOW

    def test_direct_write_rejected(self):
        result = verify_script(
            "rm -rf /home/user/mine/cache\n", self.RULES
        )
        assert result.verdict is Verdict.REJECT
        assert any(v.definite for v in result.violations)

    def test_ancestor_deletion_rejected(self):
        result = verify_script("rm -rf /home/user\n", self.RULES)
        assert result.verdict is Verdict.REJECT

    def test_sibling_write_allowed(self):
        result = verify_script("touch /home/user/other/x\n", self.RULES)
        assert result.verdict is Verdict.ALLOW

    def test_symbolic_path_needs_guard(self):
        result = verify_script('rm -rf "$1"/cache\n', self.RULES, n_args=1)
        assert result.verdict is Verdict.NEEDS_GUARD
        assert result.guards

    def test_symbolic_under_divergent_prefix_allowed(self):
        result = verify_script('rm -rf "/opt/$1"\n', self.RULES, n_args=1)
        assert result.verdict is Verdict.ALLOW

    def test_read_only_policy_ignores_reads_when_w(self):
        rules = [PolicyRule(path="~/mine", no_read=False, no_write=True)]
        result = verify_script("cat /home/user/mine/notes\n", rules)
        assert result.verdict is Verdict.ALLOW

    def test_read_caught_by_r_policy(self):
        rules = [PolicyRule(path="~/mine", no_read=True, no_write=False)]
        result = verify_script("cat /home/user/mine/notes\n", rules)
        assert result.verdict is Verdict.REJECT

    def test_render_mentions_verdict(self):
        result = verify_script("touch /tmp/x\n", self.RULES)
        assert "ALLOW" in result.render()
