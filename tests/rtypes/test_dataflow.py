"""Fixpoint corner cases for rtypes/dataflow.py: what happens when the
widening bound is hit, when a cycle contains a blocking (signature-less)
stage, and how ⊥ (dead) sources propagate.  These corners back the
stream-type annotations the optimization advisor prints."""

from repro.rtypes.dataflow import DataflowGraph, ring_invariant
from repro.rtypes.library import signature_for
from repro.rtypes.signatures import identity, prefix_sig
from repro.rtypes.types import StreamType


class TestWideningBound:
    def test_widened_types_over_approximate(self):
        result = ring_invariant(
            [("cat", identity("cat")), ("sed", prefix_sig(">", "sed"))],
            seed=StreamType.of("[a-z]+"),
            max_iterations=4,
        )
        assert not result.converged
        assert result.iterations == 4
        assert set(result.widened) == {"cat", "sed"}
        # after widening, cat carries ⊤ and sed the image of ⊤ under its
        # signature — both admit iterates far beyond the cutoff depth
        assert result.type_of("cat").line == StreamType.any().line
        assert result.type_of("sed").admits(">" * 40 + "abc")

    def test_downstream_sees_widened_result(self):
        # src feeds a growing loop; a tap off the loop must observe the
        # widened over-approximation, not a stale partial iterate.
        graph = DataflowGraph()
        graph.add_stage("src", None, seed=StreamType.of("[a-z]+"))
        graph.add_stage("grow", prefix_sig(">", "sed"))
        graph.add_stage("back", identity("cat"))
        graph.add_stage("tap", identity("tee"))
        graph.connect("src", "grow")
        graph.connect("grow", "back")
        graph.connect("back", "grow")
        graph.connect("grow", "tap")
        result = graph.infer(max_iterations=4)
        assert not result.converged
        # a 4-iteration unwidened run could only justify ~4 prefixes;
        # admitting a depth-40 iterate proves the tap saw the widening
        assert result.type_of("tap").admits(">" * 40 + "abc")

    def test_generous_bound_avoids_widening(self):
        # the same stable ring converges well under the default bound
        result = ring_invariant(
            [("cat", identity("cat")), ("sort", identity("sort"))],
            seed=StreamType.of("[a-z]+"),
        )
        assert result.converged
        assert not result.widened


class TestCyclicBlocking:
    def test_cycle_with_signatureless_stage_converges(self):
        # `sort` in a loop has no line-map signature: its output is ⊤.
        # The cycle must still reach a fixpoint rather than oscillate.
        graph = DataflowGraph()
        graph.add_stage("seed", None, seed=StreamType.of("[0-9]+"))
        graph.add_stage("blocking", None)  # e.g. sort: no signature
        graph.add_stage("filter", signature_for(["grep", "[0-9]"]))
        graph.connect("seed", "blocking")
        graph.connect("blocking", "filter")
        graph.connect("filter", "blocking")
        assert graph.has_cycle()
        result = graph.infer()
        assert result.converged
        assert result.type_of("blocking").line == StreamType.any().line

    def test_cycle_iterations_stay_small(self):
        graph = DataflowGraph()
        graph.add_stage("a", None, seed=StreamType.of("x+"))
        graph.add_stage("b", None)
        graph.connect("a", "b")
        graph.connect("b", "a")
        result = graph.infer()
        assert result.converged
        assert result.iterations <= 5


class TestBottomSources:
    def test_dead_seed_stays_dead_through_signatures(self):
        graph = DataflowGraph()
        graph.add_stage("src", None, seed=StreamType.dead())
        graph.add_stage("map", prefix_sig(">", "sed"))
        graph.connect("src", "map")
        result = graph.infer()
        assert result.converged
        assert result.type_of("map").is_dead()

    def test_dead_and_live_union_is_live(self):
        graph = DataflowGraph()
        graph.add_stage("dead", None, seed=StreamType.dead())
        graph.add_stage("live", None, seed=StreamType.of("ok"))
        graph.add_stage("join", identity("cat"))
        graph.connect("dead", "join")
        graph.connect("live", "join")
        result = graph.infer()
        assert result.converged
        joined = result.type_of("join")
        assert not joined.is_dead()
        assert joined.admits("ok")

    def test_unseeded_isolated_stage_defaults_to_any(self):
        # a stage with no predecessors and no seed models an external
        # input: assume ⊤, not ⊥, so downstream work is not erased.
        graph = DataflowGraph()
        graph.add_stage("orphan", identity("cat"))
        result = graph.infer()
        assert result.converged
        assert result.type_of("orphan").line == StreamType.any().line
