"""Unit tests for signatures: construction, application, polymorphism."""

import pytest

from repro.rlang import Regex
from repro.rtypes import (
    Signature,
    StreamType,
    TypeError_,
    TypeVarT,
    apply_signature,
    filter_sig,
    identity,
    prefix_sig,
    producer,
    signature_for,
    simple,
    suffix_sig,
)


class TestSimpleSignatures:
    def test_simple_application(self):
        sig = simple(".*", "desc.*", label="grep '^desc'")
        out = apply_signature(sig, StreamType.any())
        assert out.admits("description")
        assert not out.admits("other")

    def test_domain_violation(self):
        sig = simple("[0-9]+", "[0-9]+")
        with pytest.raises(TypeError_):
            apply_signature(sig, StreamType.of("[a-z]+"))

    def test_error_includes_witness(self):
        sig = simple("[0-9]+", "[0-9]+", label="numeric")
        try:
            apply_signature(sig, StreamType.of("[0-9a-z]+"))
        except TypeError_ as exc:
            assert "e.g." in str(exc)
        else:
            raise AssertionError("expected TypeError_")

    def test_producer_ignores_input(self):
        sig = producer("[0-9]+", label="wc")
        out = apply_signature(sig, StreamType.of("anything.*"))
        assert out.admits("42")


class TestPolymorphism:
    def test_identity_passes_through(self):
        sig = identity("sort")
        out = apply_signature(sig, StreamType.of("[a-z]+"))
        assert out == StreamType.of("[a-z]+")

    def test_prefix_sig(self):
        # sed 's/^/0x/' :: ∀α. α -> 0xα  (§4)
        sig = prefix_sig("0x", label="sed")
        out = apply_signature(sig, StreamType.of("[0-9a-f]+"))
        assert out.admits("0xdeadbeef")
        assert not out.admits("deadbeef")
        assert not out.admits("0xZZ")  # the part after 0x stays hex!

    def test_suffix_sig(self):
        sig = suffix_sig(";", label="sed")
        out = apply_signature(sig, StreamType.of("[a-z]+"))
        assert out.admits("abc;")
        assert not out.admits("abc")

    def test_filter_sig_intersects(self):
        sig = filter_sig("desc.*", label="grep")
        out = apply_signature(sig, StreamType.of("(Desc|Release):.*"))
        assert out.is_dead()

    def test_filter_keeps_matching_subset(self):
        sig = filter_sig(".*x.*", label="grep x")
        out = apply_signature(sig, StreamType.of("[a-z]{3}"))
        assert out.admits("axb")
        assert not out.admits("abc")
        assert not out.admits("xxxx")  # still bounded by input's 3 chars

    def test_bounded_quantification_ok(self):
        # sort -g :: ∀α ⊆ BOUND. α -> α
        sig = identity("sort -g", bound="0x[0-9a-f]+.*")
        out = apply_signature(sig, StreamType.of("0x[0-9a-f]+"))
        assert out.admits("0xff")

    def test_bounded_quantification_violation(self):
        sig = identity("sort -g", bound="0x[0-9a-f]+.*")
        with pytest.raises(TypeError_) as exc_info:
            apply_signature(sig, StreamType.of("0x.*"))
        assert "bound" in str(exc_info.value)

    def test_paper_hex_pipeline_chain(self):
        """The full §4 derivation: instantiate sed's α with grep's output."""
        grep_out = StreamType.of("[0-9a-f]+")
        sed_out = apply_signature(prefix_sig("0x", "sed"), grep_out)
        sort_sig = identity("sort -g", bound="0x[0-9a-f]+.*")
        sort_out = apply_signature(sort_sig, sed_out)
        assert sort_out == sed_out

    def test_str_rendering(self):
        sig = identity("sort -g", bound="0x[0-9a-f]+.*")
        text = str(sig)
        assert "∀" in text and "->" in text


class TestSignatureLookup:
    def test_grep(self):
        sig = signature_for(["grep", "^desc"])
        out = apply_signature(sig, StreamType.any())
        assert out.admits("desc rest")
        assert not out.admits("no match")

    def test_grep_v(self):
        sig = signature_for(["grep", "-v", "^#"])
        out = apply_signature(sig, StreamType.any())
        assert out.admits("code")
        assert not out.admits("# comment")

    def test_grep_o(self):
        sig = signature_for(["grep", "-oE", "[0-9a-f]+"])
        out = apply_signature(sig, StreamType.any())
        assert out.admits("deadbeef")
        assert not out.admits("xyz")

    def test_grep_c(self):
        sig = signature_for(["grep", "-c", "x"])
        out = apply_signature(sig, StreamType.any())
        assert out.admits("17")

    def test_sed_prefix(self):
        sig = signature_for(["sed", "s/^/0x/"])
        out = apply_signature(sig, StreamType.of("[0-9]+"))
        assert out.admits("0x42")

    def test_sed_suffix(self):
        sig = signature_for(["sed", "s/$/!/"])
        out = apply_signature(sig, StreamType.of("hi"))
        assert out.admits("hi!")

    def test_sed_general_untyped(self):
        assert signature_for(["sed", "s/a/b/"]) is None

    def test_sort_plain_identity(self):
        sig = signature_for(["sort"])
        out = apply_signature(sig, StreamType.of("[a-z]+"))
        assert out == StreamType.of("[a-z]+")

    def test_sort_g_bound(self):
        sig = signature_for(["sort", "-g"])
        apply_signature(sig, StreamType.of("0x[0-9a-f]+"))  # fine
        with pytest.raises(TypeError_):
            apply_signature(sig, StreamType.of("0x.*"))

    def test_cut(self):
        sig = signature_for(["cut", "-f", "2"])
        out = apply_signature(sig, StreamType.any())
        assert out.admits("field")
        assert not out.admits("a\tb")

    def test_cut_custom_delim(self):
        sig = signature_for(["cut", "-d:", "-f", "1"])
        out = apply_signature(sig, StreamType.any())
        assert not out.admits("a:b")

    def test_wc_produces_numbers(self):
        sig = signature_for(["wc", "-l"])
        out = apply_signature(sig, StreamType.dead())
        assert out.admits("0")

    def test_uniq_c(self):
        sig = signature_for(["uniq", "-c"])
        out = apply_signature(sig, StreamType.of("[a-z]+"))
        assert out.admits("   3 abc")

    def test_tr_d(self):
        sig = signature_for(["tr", "-d", "0-9"])
        out = apply_signature(sig, StreamType.any())
        assert out.admits("abc")
        assert not out.admits("a1c")

    def test_ls_l(self):
        sig = signature_for(["ls", "-l"])
        out = apply_signature(sig, StreamType.any())
        assert out.admits("-rw-r--r-- 1 u g 10 Jan 1 f")

    def test_unknown_command_is_untyped(self):
        assert signature_for(["frobnicate", "-x"]) is None

    def test_lsb_release(self):
        sig = signature_for(["lsb_release", "-a"])
        out = apply_signature(sig, StreamType.any())
        assert out.admits("Release:\t12")
        assert not out.admits("desc:\t12")


class TestDelegatingSignatures:
    def test_xargs_delegates_to_inner(self):
        sig = signature_for(["xargs", "grep", "-oE", "[0-9]+"])
        out = apply_signature(sig, StreamType.any())
        assert out.admits("123")
        assert not out.admits("abc")

    def test_xargs_skips_own_flags(self):
        sig = signature_for(["xargs", "-n", "1", "grep", "-oE", "[a-z]+"])
        out = apply_signature(sig, StreamType.any())
        assert out.admits("abc")

    def test_xargs_unknown_inner_untyped(self):
        assert signature_for(["xargs", "frobnicate"]) is None

    def test_awk_field_print(self):
        sig = signature_for(["awk", "{print $2}"])
        out = apply_signature(sig, StreamType.any())
        assert out.admits("field")
        assert not out.admits("two words")

    def test_awk_general_untyped(self):
        assert signature_for(["awk", "{sum+=$1} END {print sum}"]) is None
