"""Unit tests for stream types and the named type library."""

from repro.rlang import Regex
from repro.rtypes import (
    StreamType,
    grep_line_language,
    named_type,
    named_type_names,
    register_named_type,
    type_of,
)


class TestStreamType:
    def test_admits(self):
        st = StreamType.of("[0-9]+")
        assert st.admits("123")
        assert not st.admits("12a")

    def test_admits_stream(self):
        st = StreamType.of("[a-z]+")
        assert st.admits_stream(["abc", "def"])
        assert not st.admits_stream(["abc", "DEF"])

    def test_any(self):
        assert StreamType.any().admits("whatever: anything")

    def test_dead(self):
        assert StreamType.dead().is_dead()
        assert not StreamType.any().is_dead()

    def test_intersect(self):
        st = StreamType.of("[a-z]+").intersect(StreamType.of(".*oo.*"))
        assert st.admits("foo")
        assert not st.admits("bar")

    def test_union(self):
        st = StreamType.of("cat").union(StreamType.of("dog"))
        assert st.admits("cat") and st.admits("dog")

    def test_subtyping(self):
        assert StreamType.of("desc.*") <= StreamType.of(".*")
        assert not (StreamType.of(".*") <= StreamType.of("desc.*"))

    def test_eq(self):
        assert StreamType.of("a+") == StreamType.of("aa*")

    def test_describe(self):
        assert StreamType.of(".*", "any").describe() == "any"
        assert "desc" in StreamType.of("desc.*").describe()


class TestNamedTypes:
    def test_core_names_exist(self):
        for name in ["any", "url", "longlist", "path", "hex", "number"]:
            assert named_type(name) is not None

    def test_unknown_name(self):
        assert named_type("nonsense") is None

    def test_url(self):
        url = named_type("url")
        assert url.admits("https://example.com/x")
        assert url.admits("ftp://host/file")
        assert not url.admits("not a url")

    def test_longlist(self):
        longlist = named_type("longlist")
        assert longlist.admits("-rw-r--r-- 1 root root 4096 Jan  1 00:00 file.txt")
        assert longlist.admits("drwxr-xr-x 2 user group 512 May 14 notes")
        assert not longlist.admits("file.txt")

    def test_lsb_release(self):
        lsb = named_type("lsb_release")
        assert lsb.admits("Description:\tDebian GNU/Linux 12")
        assert not lsb.admits("description:\toops")

    def test_path(self):
        path = named_type("path")
        assert path.admits("/home/user/.steam")
        assert path.admits("relative/path")
        assert not path.admits("")

    def test_register(self):
        register_named_type("semver", r"[0-9]+\.[0-9]+\.[0-9]+")
        assert named_type("semver").admits("1.2.3")
        assert "semver" in named_type_names()

    def test_type_of_falls_back_to_pattern(self):
        st = type_of("[0-9]{4}")
        assert st.admits("2025")

    def test_type_of_prefers_name(self):
        assert type_of("any").name == "any"


class TestGrepLanguage:
    def test_unanchored(self):
        lang = grep_line_language("desc")
        assert lang.matches("xx desc yy")
        assert not lang.matches("de sc")

    def test_start_anchor(self):
        lang = grep_line_language("^desc")
        assert lang.matches("description")
        assert not lang.matches("xdesc")

    def test_end_anchor(self):
        lang = grep_line_language("desc$")
        assert lang.matches("my desc")
        assert not lang.matches("desc more")

    def test_both_anchors(self):
        lang = grep_line_language("^desc$")
        assert lang.matches("desc")
        assert not lang.matches("descx")

    def test_whole_line(self):
        lang = grep_line_language("de.c", whole_line=True)
        assert lang.matches("desc")
        assert not lang.matches("xdesc")
