"""Unit tests for homomorphic-image types (tr translation)."""

import pytest

from repro.rlang import Regex
from repro.rtypes import (
    StreamType,
    apply_signature,
    check_pipeline,
    signature_for,
)


class TestMapCharsOperation:
    def test_offset_image(self):
        lang = Regex.compile("[a-z]+")
        upper = lang.map_chars(_upcase)
        assert upper.matches("HELLO")
        assert not upper.matches("hello")

    def test_partial_map_keeps_rest(self):
        lang = Regex.compile("[a-z0-9]+")
        upper = lang.map_chars(_upcase)
        assert upper.matches("AB12")
        assert not upper.matches("ab12")

    def test_structure_preserved(self):
        lang = Regex.compile("a(b|c)d")
        image = lang.map_chars(_upcase)
        assert image.matches("ABD") and image.matches("ACD")
        assert not image.matches("AD")

    def test_length_preserved(self):
        lang = Regex.compile("a{3}")
        image = lang.map_chars(_upcase)
        assert image.matches("AAA")
        assert not image.matches("AA")


def _upcase(charset):
    from repro.rlang.charclass import CharSet

    lowers = CharSet.range("a", "z")
    untouched = charset.difference(lowers)
    mapped = CharSet.empty()
    overlap = charset.intersect(lowers)
    for lo, hi in overlap.intervals:
        mapped = mapped.union(CharSet([(lo - 32, hi - 32)]))
    return untouched.union(mapped)


class TestTrSignature:
    def test_signature_exists(self):
        sig = signature_for(["tr", "a-z", "A-Z"])
        assert sig is not None
        assert "∀α" in str(sig)

    def test_application(self):
        sig = signature_for(["tr", "a-z", "A-Z"])
        out = apply_signature(sig, StreamType.of("[a-z]+[0-9]"))
        assert out.admits("ABC3")
        assert not out.admits("abc3")
        assert out.admits("X9")

    def test_explicit_char_list(self):
        sig = signature_for(["tr", "abc", "xyz"])
        out = apply_signature(sig, StreamType.of("[abc]+"))
        assert out.admits("xyz")
        assert not out.admits("abc")

    def test_set2_padding(self):
        # POSIX pads SET2 with its last character
        sig = signature_for(["tr", "abc", "x"])
        out = apply_signature(sig, StreamType.of("[abc]+"))
        assert out.admits("xxx")
        assert not out.admits("abx")

    def test_pipeline_dead_after_upcase(self):
        result = check_pipeline(
            [["grep", "-oE", "[a-z]+"], ["tr", "a-z", "A-Z"], ["grep", "[a-z]"]]
        )
        assert result.output_dead

    def test_pipeline_live_for_upper(self):
        result = check_pipeline(
            [["grep", "-oE", "[a-z]+"], ["tr", "a-z", "A-Z"], ["grep", "^[A-Z]+$"]]
        )
        assert not result.issues

    def test_tr_d_still_works(self):
        sig = signature_for(["tr", "-d", "0-9"])
        out = apply_signature(sig, StreamType.any())
        assert out.admits("abc")
        assert not out.admits("a1")
