"""Unit tests for pipeline checking and dataflow fixpoints."""

from repro.rtypes import (
    DataflowGraph,
    StageIssueKind,
    StreamType,
    check_pipeline,
    filter_sig,
    identity,
    prefix_sig,
    ring_invariant,
    simple,
)


class TestCheckPipeline:
    def test_fig5_dead_stream(self):
        result = check_pipeline(
            [["lsb_release", "-a"], ["grep", "^desc"], ["cut", "-f", "2"]]
        )
        assert result.output_dead
        dead = result.dead_stages()
        assert len(dead) == 1
        assert dead[0].stage == 1
        assert "empty language" in dead[0].message

    def test_fig5_corrected(self):
        result = check_pipeline(
            [["lsb_release", "-a"], ["grep", "^Desc"], ["cut", "-f", "2"]]
        )
        assert not result.output_dead
        assert not result.issues

    def test_hex_pipeline_polymorphic(self):
        result = check_pipeline(
            [["grep", "-oE", "[0-9a-f]+"], ["sed", "s/^/0x/"], ["sort", "-g"]]
        )
        assert not result.issues
        assert result.output.admits("0xdeadbeef")

    def test_hex_pipeline_simple_types_fail(self):
        sigs = [None, simple(".*", "0x.*", label="sed (simple)"), None]
        result = check_pipeline(
            [["grep", "-oE", "[0-9a-f]+"], ["sed", "s/^/0x/"], ["sort", "-g"]],
            signatures=sigs,
        )
        errors = result.errors()
        assert len(errors) == 1
        assert errors[0].stage == 2

    def test_untyped_stage_reported(self):
        result = check_pipeline([["cat"], ["frobnicate"], ["sort"]])
        untyped = result.untyped_stages()
        assert len(untyped) == 1
        assert untyped[0].stage == 1
        assert "monitoring" in untyped[0].message

    def test_dead_propagates_through_transformers(self):
        result = check_pipeline(
            [["lsb_release", "-a"], ["grep", "^desc"], ["cut", "-f", "2"], ["sort"]]
        )
        assert result.output_dead
        # only one issue is reported (at the stage the stream died)
        assert len(result.dead_stages()) == 1

    def test_dead_revived_by_producer(self):
        result = check_pipeline(
            [["lsb_release", "-a"], ["grep", "^desc"], ["wc", "-l"]]
        )
        assert not result.output_dead
        assert result.output.admits("0")

    def test_input_type_respected(self):
        result = check_pipeline(
            [["grep", "x"]], input_type=StreamType.of("[a-z]+")
        )
        assert result.output.admits("axe")
        assert not result.output.admits("X-RAY")

    def test_stage_types_recorded(self):
        result = check_pipeline([["cat"], ["grep", "a"]])
        assert len(result.stage_types) == 2


class TestDataflow:
    def test_acyclic_matches_pipeline(self):
        graph = DataflowGraph()
        graph.add_stage("src", None, seed=StreamType.of("[0-9a-f]+"))
        graph.add_stage("sed", prefix_sig("0x", "sed"))
        graph.connect("src", "sed")
        result = graph.infer()
        assert result.converged
        assert result.type_of("sed").admits("0xff")

    def test_cycle_detection(self):
        graph = DataflowGraph()
        graph.add_stage("a", identity("a"))
        graph.add_stage("b", identity("b"))
        graph.connect("a", "b")
        graph.connect("b", "a")
        assert graph.has_cycle()
        assert graph.cycles()

    def test_ring_identity_converges(self):
        result = ring_invariant(
            [("cat", identity("cat")), ("sort", identity("sort"))],
            seed=StreamType.of("[a-z]+"),
        )
        assert result.converged
        assert result.type_of("sort") == StreamType.of("[a-z]+")

    def test_ring_with_filter_converges(self):
        result = ring_invariant(
            [("cat", identity("cat")), ("grep", filter_sig("[a-z]*x[a-z]*", "grep x"))],
            seed=StreamType.of("[a-z]+"),
        )
        assert result.converged
        inv = result.type_of("grep")
        assert inv.admits("axb")
        assert not inv.admits("ab")

    def test_growing_ring_widens(self):
        # a stage that keeps prefixing grows the language forever; the
        # engine must bail out by widening instead of looping.
        result = ring_invariant(
            [("cat", identity("cat")), ("sed", prefix_sig(">", "sed"))],
            seed=StreamType.of("[a-z]+"),
            max_iterations=8,
        )
        assert not result.converged
        assert result.widened

    def test_merge_point_unions(self):
        graph = DataflowGraph()
        graph.add_stage("a", None, seed=StreamType.of("cat"))
        graph.add_stage("b", None, seed=StreamType.of("dog"))
        graph.add_stage("join", identity("join"))
        graph.connect("a", "join")
        graph.connect("b", "join")
        result = graph.infer()
        joined = result.type_of("join")
        assert joined.admits("cat") and joined.admits("dog")

    def test_bound_violation_surfaces_error(self):
        graph = DataflowGraph()
        graph.add_stage("src", None, seed=StreamType.of("[a-z]+"))
        graph.add_stage("sortg", identity("sort -g", bound="[0-9]+.*"))
        graph.connect("src", "sortg")
        result = graph.infer()
        assert result.errors

    def test_iterations_bounded_by_ring_length(self):
        stages = [(f"s{i}", identity(f"s{i}")) for i in range(6)]
        result = ring_invariant(stages, seed=StreamType.of("[a-z]+"))
        assert result.converged
        assert result.iterations <= 10
