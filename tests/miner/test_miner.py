"""Unit tests for the documentation-mining pipeline (Fig. 4)."""

import pytest

from repro.miner import (
    ExtractionError,
    Invocation,
    ModelProber,
    SubprocessProber,
    compare_specs,
    compile_spec,
    extract_syntax,
    generate_invocations,
    mine_command,
    page_names,
    probe_all,
    sections,
    validate_all,
)
from repro.specs import default_registry
from repro.specs.ir import Deletes, Exists, PathKind


class TestManpages:
    def test_corpus_present(self):
        names = page_names()
        assert "rm" in names and "mkdir" in names and "frob" in names
        assert len(names) >= 12

    def test_sections_split(self):
        from repro.miner import load_page

        parts = sections(load_page("rm"))
        assert "NAME" in parts and "SYNOPSIS" in parts and "OPTIONS" in parts
        assert "rm" in parts["SYNOPSIS"]


class TestExtraction:
    def test_rm_flags(self):
        syntax = extract_syntax("rm")
        assert set(syntax.flags) == {"f", "i", "r", "R", "d", "v"}
        assert not syntax.flags["f"].takes_arg
        assert syntax.operands.min_count == 1
        assert syntax.operands.max_count is None
        assert syntax.operands.kind == "path"

    def test_flag_with_argument(self):
        syntax = extract_syntax("mkdir")
        assert syntax.flags["m"].takes_arg
        assert syntax.flags["m"].arg_hint == "mode"

    def test_optional_operands(self):
        syntax = extract_syntax("cat")
        assert syntax.operands.min_count == 0

    def test_two_operand_command(self):
        syntax = extract_syntax("cp")
        assert syntax.operands.min_count == 2
        assert syntax.operands.max_count == 2

    def test_summary_from_name_section(self):
        assert "remove" in extract_syntax("rm").summary

    def test_incomplete_documentation_marked(self):
        syntax = extract_syntax("frob")
        assert syntax.incomplete
        assert not syntax.flags

    def test_missing_synopsis_rejected(self):
        with pytest.raises(ExtractionError):
            extract_syntax("broken", page_text="NAME\n    broken - no synopsis\n")

    def test_descriptions_extracted(self):
        syntax = extract_syntax("rm")
        assert "recursively" in syntax.flags["r"].description


class TestGuardrail:
    """The DSL admits only legitimate invocations (§3)."""

    def test_validate_accepts_legitimate(self):
        syntax = extract_syntax("rm")
        assert syntax.validate(["rm", "-f", "-r", "x"]) is None
        assert syntax.validate(["rm", "-fr", "x"]) is None

    def test_validate_rejects_unknown_flag(self):
        syntax = extract_syntax("rm")
        assert syntax.validate(["rm", "-z", "x"]) is not None

    def test_validate_rejects_missing_operand(self):
        syntax = extract_syntax("rm")
        assert syntax.validate(["rm", "-f"]) is not None

    def test_validate_rejects_excess_operands(self):
        syntax = extract_syntax("cp")
        assert syntax.validate(["cp", "a", "b", "c"]) is not None

    def test_generated_invocations_all_valid(self):
        syntax = extract_syntax("rm")
        invocations = generate_invocations(syntax)
        validate_all(syntax, invocations)  # must not raise

    def test_paper_rm_sweep_present(self):
        """§3: rm { , -f, -r, -f -r } $p must all be generated."""
        syntax = extract_syntax("rm")
        combos = {inv.flags for inv in generate_invocations(syntax)}
        for expected in [(), ("-f",), ("-r",), ("-f", "-r")]:
            assert tuple(expected) in combos

    def test_scenarios_swept(self):
        syntax = extract_syntax("rm")
        scenarios = {inv.scenarios for inv in generate_invocations(syntax)}
        assert ("file",) in scenarios
        assert ("dir",) in scenarios
        assert ("missing",) in scenarios

    def test_interactive_flags_excluded(self):
        syntax = extract_syntax("rm")
        for inv in generate_invocations(syntax):
            assert "-i" not in inv.flags


class TestProbing:
    def test_model_rm_file(self):
        traces = probe_all(
            [Invocation("rm", ("-f", "-r"), ("file",))], prober=ModelProber()
        )
        [trace] = traces
        assert trace.exit_code == 0
        assert trace.operand_outcome(0) == ("file", None)

    def test_model_rm_dir_without_r_fails(self):
        [trace] = probe_all([Invocation("rm", (), ("dir",))], prober=ModelProber())
        assert trace.exit_code == 1
        assert trace.operand_outcome(0) == ("dir", "dir")
        assert trace.stderr

    def test_model_rm_missing_with_f(self):
        [trace] = probe_all([Invocation("rm", ("-f",), ("missing",))], prober=ModelProber())
        assert trace.exit_code == 0

    def test_model_mkdir(self):
        [trace] = probe_all([Invocation("mkdir", (), ("missing",))], prober=ModelProber())
        assert trace.exit_code == 0
        assert trace.operand_outcome(0) == (None, "dir")

    def test_model_mkdir_existing_fails(self):
        [trace] = probe_all([Invocation("mkdir", (), ("dir",))], prober=ModelProber())
        assert trace.exit_code == 1

    def test_model_touch_creates(self):
        [trace] = probe_all([Invocation("touch", (), ("missing",))], prober=ModelProber())
        assert trace.operand_outcome(0) == (None, "file")

    def test_subprocess_prober_against_real_rm(self):
        prober = SubprocessProber()
        if not prober.available("rm"):
            pytest.skip("no rm binary")
        [trace] = probe_all([Invocation("rm", ("-f", "-r"), ("dir",))], prober=prober)
        assert trace.exit_code == 0
        assert trace.operand_outcome(0) == ("dir", None)

    def test_model_and_real_agree_on_rm(self):
        """The executable model is validated against the real binary."""
        real = SubprocessProber()
        if not real.available("rm"):
            pytest.skip("no rm binary")
        from repro.miner import SCENARIOS

        for flags in [(), ("-f",), ("-r",), ("-f", "-r")]:
            for scenario in SCENARIOS:
                inv = Invocation("rm", flags, (scenario,))
                model_trace = ModelProber().probe(inv)
                real_trace = real.probe(inv)
                assert (model_trace.exit_code == 0) == (real_trace.exit_code == 0), inv
                assert model_trace.operand_outcome(0) == real_trace.operand_outcome(0), inv


class TestCompilation:
    def test_rm_spec_has_recursive_delete_clause(self):
        spec = mine_command("rm")
        found = False
        for clause in spec.clauses:
            deletes = [e for e in clause.effects if isinstance(e, Deletes)]
            if deletes and deletes[0].recursive and clause.exit_code == 0:
                found = True
        assert found

    def test_rm_missing_without_f_fails(self):
        from repro.miner.compile import predict

        spec = mine_command("rm")
        assert predict(spec, [], "missing") == (False, False)
        assert predict(spec, ["-f"], "missing") == (True, False)

    def test_rm_dir_without_r_fails(self):
        from repro.miner.compile import predict

        spec = mine_command("rm")
        assert predict(spec, [], "dir") == (False, False)
        assert predict(spec, ["-r"], "dir") == (True, True)

    def test_paper_triple_shape(self):
        """§3's example: {(∃ $p)∧...} rm -f -r $p {(∄ $p) ∧ exit 0}."""
        spec = mine_command("rm")
        triples = "\n".join(spec.triples())
        assert "delete" in triples and "exit 0" in triples and "∃" in triples

    def test_mkdir_create_clause(self):
        from repro.specs.ir import Creates

        spec = mine_command("mkdir")
        created = [
            c for c in spec.clauses
            if any(isinstance(e, Creates) for e in c.effects)
        ]
        assert created

    def test_two_operand_cp(self):
        spec = mine_command("cp")
        assert spec.clauses
        assert spec.min_operands == 2

    def test_underdocumented_command_still_mined(self):
        spec = mine_command("frob")
        assert spec.clauses  # exit behaviours observed even without OPTIONS


class TestAgreement:
    """E7's core claim: mined specs match the hand-written corpus."""

    def test_probing_beats_idealised_spec_on_rmdir(self):
        """Probing uses a *non-empty* directory scenario and correctly
        discovers that rmdir fails there — a precision win over the
        idealised hand-written clause (the paper's argument for
        instrumented probing over documentation alone)."""
        from repro.miner.compile import predict

        spec = mine_command("rmdir")
        assert predict(spec, [], "dir") == (False, False)  # non-empty dir
        reference = default_registry().get("rmdir")
        assert predict(reference, [], "dir") == (True, True)  # idealised

    @pytest.mark.parametrize("name", ["rm", "mkdir", "touch"])
    def test_model_mined_matches_corpus(self, name):
        from repro.miner import extract_syntax

        spec = mine_command(name)
        reference = default_registry().get(name)
        combos = list(extract_syntax(name).flag_combinations(max_flags=2))
        report = compare_specs(spec, reference, combos)
        assert report.total > 0
        assert report.rate >= 0.9, report.disagreements

    def test_real_binary_rm_matches_corpus(self):
        prober = SubprocessProber()
        if not prober.available("rm"):
            pytest.skip("no rm binary")
        from repro.miner import extract_syntax

        spec = mine_command("rm", prober=prober)
        reference = default_registry().get("rm")
        combos = list(extract_syntax("rm").flag_combinations(max_flags=2))
        report = compare_specs(spec, reference, combos)
        assert report.rate == 1.0, report.disagreements
