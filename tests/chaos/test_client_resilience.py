"""Client failure handling: bounded retries with deterministic jitter,
separate connect/read timeouts, and the per-socket circuit breaker."""

import json
import random
import socket
import threading

import pytest

from repro.analysis.resilience import jittered_backoff
from repro.obs import TraceRecorder, use_recorder
from repro.server import ServerClient, ServerUnavailable
from repro.server.chaos import ChaosPlan, FaultSpec, use_chaos
from repro.server.client import (
    DEFAULT_PING_TIMEOUT,
    CircuitBreaker,
    RetryPolicy,
    breaker_for,
    reset_breakers,
)


class FlakyListener:
    """A Unix-socket listener that slams the door on the first
    ``failures`` connections (accept, then close before answering) and
    serves a canned ok-envelope afterwards — the shape of a daemon
    dying mid-conversation and coming back under its supervisor."""

    def __init__(self, socket_path: str, failures: int):
        self.socket_path = socket_path
        self.failures = failures
        self.connections = 0
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.bind(socket_path)
        self._sock.listen(8)
        self._stop = threading.Event()
        self.thread = threading.Thread(target=self._serve, daemon=True)
        self.thread.start()

    def _serve(self):
        while not self._stop.is_set():
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            self.connections += 1
            if self.connections <= self.failures:
                conn.close()  # mid-conversation death
                continue
            try:
                conn.recv(1 << 16)
                conn.sendall(
                    json.dumps(
                        {"ok": True, "result": {"answered": True}}
                    ).encode()
                    + b"\n"
                )
            except OSError:
                pass
            finally:
                conn.close()

    def close(self):
        self._stop.set()
        self._sock.close()


class TestRetries:
    def test_retries_mid_conversation_loss_until_success(self, tmp_path):
        path = str(tmp_path / "flaky.sock")
        listener = FlakyListener(path, failures=2)
        sleeps = []
        recorder = TraceRecorder()
        try:
            client = ServerClient(
                path,
                retry=RetryPolicy(retries=3, jitter=0.0),
                breaker=CircuitBreaker(threshold=100),
                sleep=sleeps.append,
            )
            with use_recorder(recorder):
                result = client.request({"op": "ping"})
            client.close()
        finally:
            listener.close()
        assert result == {"answered": True}
        assert len(sleeps) == 2  # two failures, two backoffs
        assert sleeps == [0.05, 0.1]  # deterministic with jitter=0
        snapshot = recorder.snapshot()
        assert snapshot.counter("server.client.retries") == 2
        assert snapshot.counter("server.client.failures") == 0

    def test_retries_exhaust_then_fail(self, tmp_path):
        path = str(tmp_path / "flaky.sock")
        listener = FlakyListener(path, failures=10)
        sleeps = []
        recorder = TraceRecorder()
        try:
            client = ServerClient(
                path,
                retry=RetryPolicy(retries=2, jitter=0.0),
                breaker=CircuitBreaker(threshold=100),
                sleep=sleeps.append,
            )
            with use_recorder(recorder):
                with pytest.raises(ServerUnavailable) as excinfo:
                    client.request({"op": "ping"})
            client.close()
        finally:
            listener.close()
        assert excinfo.value.retryable
        assert len(sleeps) == 2
        assert recorder.snapshot().counter("server.client.failures") == 1

    def test_connect_refusal_is_not_retried(self, tmp_path):
        sleeps = []
        client = ServerClient(
            str(tmp_path / "nobody.sock"),
            retry=RetryPolicy(retries=5),
            breaker=CircuitBreaker(threshold=100),
            sleep=sleeps.append,
        )
        with use_recorder(TraceRecorder()):
            with pytest.raises(ServerUnavailable) as excinfo:
                client.request({"op": "ping"})
        assert not excinfo.value.retryable
        assert sleeps == []  # fail straight to the inline fallback

    def test_shutdown_is_never_retried(self, tmp_path):
        path = str(tmp_path / "flaky.sock")
        listener = FlakyListener(path, failures=10)
        sleeps = []
        try:
            client = ServerClient(
                path,
                retry=RetryPolicy(retries=5, jitter=0.0),
                breaker=CircuitBreaker(threshold=100),
                sleep=sleeps.append,
            )
            with use_recorder(TraceRecorder()):
                with pytest.raises(ServerUnavailable):
                    client.request({"op": "shutdown"})
            client.close()
        finally:
            listener.close()
        assert sleeps == []


class TestBackoff:
    def test_exponential_growth_and_cap(self):
        delays = [
            jittered_backoff(attempt, base=0.1, multiplier=2.0, cap=0.5, jitter=0.0)
            for attempt in range(5)
        ]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_is_bounded_and_seeded(self):
        rng_a = random.Random(7)
        rng_b = random.Random(7)
        a = [jittered_backoff(i, jitter=0.25, rng=rng_a) for i in range(20)]
        b = [jittered_backoff(i, jitter=0.25, rng=rng_b) for i in range(20)]
        assert a == b  # same seed, same schedule
        for attempt, delay in enumerate(a):
            center = min(1.0, 0.05 * (2.0 ** attempt))
            assert center * 0.75 <= delay <= center * 1.25

    def test_policy_delay_uses_client_rng(self):
        policy = RetryPolicy(retries=2, jitter=0.25)
        assert policy.delay(0, rng=random.Random(3)) == policy.delay(
            0, rng=random.Random(3)
        )


class TestCircuitBreaker:
    def test_opens_after_threshold_and_fast_fails(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=3, cooldown=5.0, clock=clock)
        recorder = TraceRecorder()
        with use_recorder(recorder):
            for _ in range(3):
                assert breaker.allow()
                breaker.record_failure()
            assert breaker.state == "open"
            assert not breaker.allow()  # fast fail, no socket touched
        snapshot = recorder.snapshot()
        assert snapshot.counter("server.client.breaker_open") == 1
        assert snapshot.counter("server.client.breaker_fastfail") == 1

    def test_half_opens_after_cooldown_then_closes_on_success(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=5.0, clock=clock)
        recorder = TraceRecorder()
        with use_recorder(recorder):
            breaker.record_failure()
            assert not breaker.allow()
            clock.advance(5.1)
            assert breaker.allow()  # the probe
            assert breaker.state == "half-open"
            assert not breaker.allow()  # only one probe at a time
            breaker.record_success()
            assert breaker.state == "closed"
            assert breaker.allow()
        assert recorder.snapshot().counter("server.client.breaker_halfopen") == 1

    def test_half_open_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=2, cooldown=5.0, clock=clock)
        with use_recorder(TraceRecorder()):
            breaker.record_failure()
            breaker.record_failure()
            clock.advance(5.1)
            assert breaker.allow()
            breaker.record_failure()  # the probe also failed
            assert breaker.state == "open"
            assert not breaker.allow()

    def test_open_breaker_short_circuits_requests(self, tmp_path):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=60.0, clock=clock)
        with use_recorder(TraceRecorder()):
            breaker.record_failure()
            client = ServerClient(str(tmp_path / "x.sock"), breaker=breaker)
            with pytest.raises(ServerUnavailable) as excinfo:
                client.request({"op": "ping"})
        assert "circuit breaker open" in str(excinfo.value)

    def test_registry_is_per_socket_path(self):
        reset_breakers()
        a = breaker_for("/tmp/a.sock")
        b = breaker_for("/tmp/b.sock")
        assert a is not b
        assert breaker_for("/tmp/a.sock") is a
        reset_breakers()
        assert breaker_for("/tmp/a.sock") is not a


class TestTimeouts:
    def test_timeout_kwarg_sets_both(self, tmp_path):
        client = ServerClient(str(tmp_path / "x.sock"), timeout=7.0)
        assert client.connect_timeout == 7.0
        assert client.read_timeout == 7.0

    def test_split_timeouts_override(self, tmp_path):
        client = ServerClient(
            str(tmp_path / "x.sock"), connect_timeout=1.0, read_timeout=45.0
        )
        assert client.connect_timeout == 1.0
        assert client.read_timeout == 45.0

    def test_slow_daemon_trips_read_timeout_not_ping(self, daemon):
        # a chaos delay on analyze stalls the answer past the client's
        # read timeout; the loss is retryable (the daemon may just be
        # slow because it is restarting) but here retries=0 surfaces it
        with use_chaos(
            ChaosPlan(0, [FaultSpec("server.delay", match="analyze", delay_s=0.6)])
        ):
            client = ServerClient(
                daemon.socket_path,
                read_timeout=0.2,
                retry=RetryPolicy(retries=0),
                breaker=CircuitBreaker(threshold=100),
            )
            with use_recorder(TraceRecorder()):
                with pytest.raises(ServerUnavailable) as excinfo:
                    client.analyze_source("echo hi\n")
            assert excinfo.value.retryable
            client.close()
            # pings carry their own short deadline and are not delayed
            probe = ServerClient(
                daemon.socket_path, breaker=CircuitBreaker(threshold=100)
            )
            with use_recorder(TraceRecorder()):
                assert probe.ping(timeout=DEFAULT_PING_TIMEOUT)["pid"]
            probe.close()


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, seconds: float):
        self.now += seconds
