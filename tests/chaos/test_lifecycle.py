"""Crash-only lifecycle: stale-socket takeover, graceful drain,
supervised restarts, and the full kill-9 stories — mid-request
fallback and warm-cache recovery — against real daemon subprocesses."""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.obs import TraceRecorder, use_recorder
from repro.server import (
    AnalysisServer,
    ServerClient,
    ServerError,
    ServerUnavailable,
    SocketInUse,
    Supervisor,
    ensure_socket_free,
    probe_socket,
)
from repro.server.chaos import ChaosPlan, FaultSpec
from repro.server.client import CircuitBreaker, RetryPolicy

from .conftest import start_daemon

REPO_ROOT = Path(__file__).resolve().parents[2]


def _stale_socket(tmp_path) -> str:
    """A socket file nobody is listening on (the kill -9 residue)."""
    path = str(tmp_path / "stale.sock")
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.bind(path)
    sock.close()  # bound but never listening: connects are refused
    assert os.path.exists(path)
    return path


class TestSocketTakeover:
    def test_probe_states(self, tmp_path, daemon):
        assert probe_socket(str(tmp_path / "nothing.sock")) == "absent"
        assert probe_socket(_stale_socket(tmp_path)) == "dead"
        assert probe_socket(daemon.socket_path) == "alive"

    def test_dead_socket_is_evicted(self, tmp_path):
        path = _stale_socket(tmp_path)
        recorder = TraceRecorder()
        assert ensure_socket_free(path, recorder=recorder) is True
        assert not os.path.exists(path)
        assert recorder.snapshot().counter("server.socket_takeovers") == 1

    def test_absent_socket_is_a_noop(self, tmp_path):
        assert ensure_socket_free(str(tmp_path / "nothing.sock")) is False

    def test_live_daemon_is_not_stolen(self, daemon):
        with pytest.raises(SocketInUse):
            ensure_socket_free(daemon.socket_path)
        # and the daemon still answers
        with ServerClient(daemon.socket_path) as client:
            assert client.ping()["pid"] == os.getpid()

    def test_daemon_boots_over_a_stale_socket(self, tmp_path):
        path = _stale_socket(tmp_path)
        server = AnalysisServer(socket_path=path, jobs=1, recorder=TraceRecorder())
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            deadline = time.monotonic() + 5.0
            while probe_socket(path) != "alive":
                assert time.monotonic() < deadline, "takeover never completed"
                time.sleep(0.01)
            assert (
                server.recorder.snapshot().counter("server.socket_takeovers")
                == 1
            )
        finally:
            try:
                ServerClient(path).shutdown()
            except (ServerUnavailable, ServerError):
                pass
            thread.join(timeout=5.0)

    def test_second_daemon_refuses_to_start(self, daemon):
        second = AnalysisServer(
            socket_path=daemon.socket_path, jobs=1, recorder=TraceRecorder()
        )
        with pytest.raises(SocketInUse):
            second.serve_forever()
        # the incumbent is untouched
        with ServerClient(daemon.socket_path) as client:
            assert client.ping()


class TestDrain:
    def test_draining_refuses_with_structured_envelope(self, daemon):
        daemon.draining.set()
        try:
            envelope = daemon.handle_request({"op": "ping"})
            assert envelope["ok"] is False
            assert envelope["draining"] is True
            assert envelope["request_id"]
            assert "draining" in envelope["error"]
            snapshot = daemon.recorder.snapshot()
            assert snapshot.counter("server.drain_refused") == 1
        finally:
            daemon.draining.clear()

    def test_clean_drain_stops_the_loop(self, tmp_path):
        server, stop = start_daemon(tmp_path)
        assert server.drain(deadline=2.0) is True
        deadline = time.monotonic() + 5.0
        while os.path.exists(server.socket_path):
            assert time.monotonic() < deadline, "drained daemon never stopped"
            time.sleep(0.01)
        snapshot = server.recorder.snapshot()
        assert snapshot.counter("server.drains") == 1
        assert snapshot.counter("server.drain_forced") == 0
        stop()

    def test_deadline_abandons_stragglers(self, tmp_path):
        server, stop = start_daemon(tmp_path)
        server.inflight += 1  # a request that will never finish
        try:
            started = time.monotonic()
            assert server.drain(deadline=0.2) is False
            assert time.monotonic() - started < 5.0
            assert (
                server.recorder.snapshot().counter("server.drain_forced") == 1
            )
        finally:
            server.inflight -= 1
            stop()


class TestSupervisor:
    def test_restarts_after_crash_then_serves(self):
        events = []

        class Flaky:
            crashes = 2

            def __init__(self):
                self.recorder = TraceRecorder()

            def serve_forever(self):
                if Flaky.crashes:
                    Flaky.crashes -= 1
                    events.append("crash")
                    raise RuntimeError("boom")
                events.append("served")

        supervisor = Supervisor(Flaky, max_restarts=5, sleep=lambda s: None)
        server = supervisor.run()
        assert events == ["crash", "crash", "served"]
        assert supervisor.restarts == 2
        assert server.recorder.snapshot().counter("server.restarts") == 0
        # each crash was counted on the server alive at the time

    def test_gives_up_past_max_restarts(self):
        class Doomed:
            def serve_forever(self):
                raise RuntimeError("always")

        supervisor = Supervisor(Doomed, max_restarts=2, sleep=lambda s: None)
        with pytest.raises(RuntimeError):
            supervisor.run()
        assert supervisor.restarts == 3  # initial + 2 allowed restarts

    def test_socket_in_use_is_not_retried(self):
        attempts = []

        class Squatter:
            def serve_forever(self):
                attempts.append(1)
                raise SocketInUse("/tmp/taken.sock")

        supervisor = Supervisor(Squatter, max_restarts=5, sleep=lambda s: None)
        with pytest.raises(SocketInUse):
            supervisor.run()
        assert len(attempts) == 1

    def test_backoff_is_bounded(self):
        sleeps = []

        class Doomed:
            def serve_forever(self):
                raise RuntimeError("always")

        supervisor = Supervisor(
            Doomed, max_restarts=20, restart_backoff=1.0, sleep=sleeps.append
        )
        with pytest.raises(RuntimeError):
            supervisor.run()
        assert max(sleeps) == 5.0  # capped
        assert sleeps[0] == 1.0  # linear from the first restart


# ---------------------------------------------------------------------------
# Full kill -9 stories against daemon subprocesses
# ---------------------------------------------------------------------------


def _cli_env(extra=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    env.pop("REPRO_CHAOS", None)
    if extra:
        env.update(extra)
    return env


def _spawn_served(tmp_path, *extra_args, env_extra=None):
    socket_path = str(tmp_path / "served.sock")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "served",
            "--socket",
            socket_path,
            "--jobs",
            "1",
            "--cache-dir",
            str(tmp_path / "cache"),
            *extra_args,
        ],
        env=_cli_env(env_extra),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        cwd=str(REPO_ROOT),
    )
    deadline = time.monotonic() + 30.0
    while probe_socket(socket_path) != "alive":
        if proc.poll() is not None or time.monotonic() > deadline:
            out, err = proc.communicate(timeout=5)
            pytest.fail(f"daemon never came up: {err}")
        time.sleep(0.05)
    return proc, socket_path


def _reap(proc):
    if proc.poll() is None:
        proc.kill()
    proc.communicate(timeout=10)


@pytest.fixture()
def script(tmp_path):
    path = tmp_path / "job.sh"
    path.write_text('if [ "$#" -lt 1 ]; then exit 1; fi\necho "$1"\n')
    return str(path)


class TestKillNineRecovery:
    def test_restarted_daemon_answers_warm_from_cache(self, tmp_path, script):
        with open(script) as handle:
            source = handle.read()
        proc, socket_path = _spawn_served(tmp_path)
        try:
            with ServerClient(socket_path) as client:
                first = client.request({"op": "analyze", "source": source})
            assert first["cached"] is False
            os.kill(proc.pid, signal.SIGKILL)
            proc.communicate(timeout=10)
            assert os.path.exists(socket_path)  # the kill -9 residue
        finally:
            _reap(proc)

        # crash-only restart: same socket, same cache dir
        proc, socket_path = _spawn_served(tmp_path)
        try:
            with ServerClient(socket_path) as client:
                second = client.request({"op": "analyze", "source": source})
                counters = client.last_metrics["counters"]
            assert second["cached"] is True
            assert counters.get("symex.runs", 0) == 0  # zero re-execution
            assert counters.get("batch.cache.hit") == 1
            assert second["report"] == first["report"]
        finally:
            _reap(proc)

    def test_kill_nine_mid_request_falls_back_byte_identical(
        self, tmp_path, script
    ):
        inline = subprocess.run(
            [sys.executable, "-m", "repro.cli", "analyze", script],
            capture_output=True,
            text=True,
            env=_cli_env(),
            cwd=str(REPO_ROOT),
        )

        # the daemon stalls analyze requests for 30s (chaos delay), so
        # the request is reliably in flight when the SIGKILL lands
        plan = ChaosPlan(0, [FaultSpec("server.delay", match="analyze", delay_s=30.0)])
        proc, socket_path = _spawn_served(
            tmp_path, env_extra={"REPRO_CHAOS": plan.to_json()}
        )
        try:
            cli = subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.cli",
                    "analyze",
                    "--server",
                    "--socket",
                    socket_path,
                    script,
                ],
                env=_cli_env(),
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
                cwd=str(REPO_ROOT),
            )
            # wait until the analyze request is in flight (the stats
            # request itself counts as one in-flight request, so >= 2)
            with ServerClient(socket_path) as probe:
                deadline = time.monotonic() + 30.0
                while True:
                    if probe.stats()["inflight"] >= 2:
                        break
                    assert time.monotonic() < deadline, "request never arrived"
                    time.sleep(0.05)
            os.kill(proc.pid, signal.SIGKILL)
            out, err = cli.communicate(timeout=120)
            assert cli.returncode == inline.returncode
            assert out == inline.stdout  # byte-identical final report
            assert "analyzing inline" in err
        finally:
            _reap(proc)


class TestSigtermDrain:
    def test_sigterm_drains_and_exits_cleanly(self, tmp_path, script):
        log_path = str(tmp_path / "ops.jsonl")
        proc, socket_path = _spawn_served(tmp_path, "--log-file", log_path)
        try:
            with ServerClient(socket_path) as client:
                client.request({"op": "ping"})
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=30)
            assert proc.returncode == 0, err
            assert not os.path.exists(socket_path)
            with open(log_path) as handle:
                events = [json.loads(line) for line in handle if line.strip()]
            names = [event.get("event") for event in events]
            assert "server.drain.start" in names
            assert "server.drain.done" in names
            assert "server.stop" in names
        finally:
            _reap(proc)
