"""The chaos substrate itself: plans serialize, injectors are
deterministic, and the fault-carrying cache misbehaves on schedule."""

import errno
import json
import os

import pytest

from repro.obs import TraceRecorder, use_recorder
from repro.server.chaos import (
    ENV_VAR,
    ChaosCache,
    ChaosInjector,
    ChaosPlan,
    FaultSpec,
    active,
    chaos_delay,
    chaos_point,
    install,
    uninstall,
    use_chaos,
)


class TestPlanSerialization:
    def test_round_trips_through_json(self):
        plan = ChaosPlan(
            seed=7,
            faults=[
                FaultSpec("worker.kill", match="KILLME", rate=0.5, times=2),
                FaultSpec("server.delay", delay_s=0.25),
            ],
        )
        restored = ChaosPlan.from_json(plan.to_json())
        assert restored.seed == 7
        assert restored.faults["worker.kill"] == plan.faults["worker.kill"]
        assert restored.faults["server.delay"].delay_s == 0.25

    def test_to_env_installs_the_plan(self):
        plan = ChaosPlan(seed=1, faults=[FaultSpec("cache.enospc")])
        env = plan.to_env({})
        assert json.loads(env[ENV_VAR])["seed"] == 1

    def test_env_var_reaches_active(self, monkeypatch):
        plan = ChaosPlan(seed=3, faults=[FaultSpec("worker.kill")])
        monkeypatch.setenv(ENV_VAR, plan.to_json())
        injector = active()
        assert injector is not None
        assert injector.fires("worker.kill")

    def test_garbage_env_is_ignored(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "{not json")
        assert active() is None
        assert not chaos_point("worker.kill")


class TestInjectorDeterminism:
    def test_unarmed_point_never_fires(self):
        injector = ChaosInjector(ChaosPlan(seed=0))
        assert not injector.fires("worker.kill")

    def test_rate_one_always_fires(self):
        injector = ChaosInjector(ChaosPlan(0, [FaultSpec("p")]))
        assert all(injector.fires("p") for _ in range(10))

    def test_rate_zero_never_fires(self):
        injector = ChaosInjector(ChaosPlan(0, [FaultSpec("p", rate=0.0)]))
        assert not any(injector.fires("p") for _ in range(10))

    def test_same_seed_same_schedule(self):
        plan = lambda: ChaosPlan(42, [FaultSpec("p", rate=0.3)])  # noqa: E731
        a = ChaosInjector(plan())
        b = ChaosInjector(plan())
        schedule_a = [a.fires("p") for _ in range(50)]
        schedule_b = [b.fires("p") for _ in range(50)]
        assert schedule_a == schedule_b
        assert any(schedule_a) and not all(schedule_a)

    def test_different_seeds_differ(self):
        a = ChaosInjector(ChaosPlan(1, [FaultSpec("p", rate=0.5)]))
        b = ChaosInjector(ChaosPlan(2, [FaultSpec("p", rate=0.5)]))
        assert [a.fires("p") for _ in range(64)] != [
            b.fires("p") for _ in range(64)
        ]

    def test_points_have_independent_streams(self):
        plan = ChaosPlan(9, [FaultSpec("p", rate=0.5), FaultSpec("q", rate=0.5)])
        solo = ChaosInjector(ChaosPlan(9, [FaultSpec("p", rate=0.5)]))
        interleaved = ChaosInjector(plan)
        schedule = []
        for _ in range(32):
            schedule.append(interleaved.fires("p"))
            interleaved.fires("q")  # must not perturb p's stream
        assert schedule == [solo.fires("p") for _ in range(32)]

    def test_times_caps_firings(self):
        injector = ChaosInjector(ChaosPlan(0, [FaultSpec("p", times=2)]))
        fired = [injector.fires("p") for _ in range(5)]
        assert fired == [True, True, False, False, False]
        assert injector.fired("p") == 2
        assert injector.calls("p") == 5

    def test_match_filters_payloads(self):
        injector = ChaosInjector(
            ChaosPlan(0, [FaultSpec("p", match="KILLME")])
        )
        assert not injector.fires("p", "echo ok")
        assert injector.fires("p", "echo KILLME now")

    def test_firings_are_counted(self):
        recorder = TraceRecorder()
        with use_recorder(recorder):
            injector = ChaosInjector(ChaosPlan(0, [FaultSpec("worker.kill")]))
            injector.fires("worker.kill")
        assert recorder.snapshot().counter("chaos.worker_kill") == 1

    def test_delay_point(self):
        injector = ChaosInjector(
            ChaosPlan(0, [FaultSpec("server.delay", delay_s=0.5, times=1)])
        )
        assert injector.delay("server.delay") == 0.5
        assert injector.delay("server.delay") == 0.0  # times exhausted


class TestInstallation:
    def test_in_process_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(
            ENV_VAR, ChaosPlan(0, [FaultSpec("env.only")]).to_json()
        )
        with use_chaos(ChaosPlan(0, [FaultSpec("proc.only")])):
            assert chaos_point("proc.only")
            assert not chaos_point("env.only")
        # context exited: back to the env plan
        assert chaos_point("env.only")

    def test_uninstall_disarms(self):
        install(ChaosPlan(0, [FaultSpec("p")]))
        uninstall()
        assert not chaos_point("p")
        assert chaos_delay("p") == 0.0


class TestChaosCache:
    def test_enospc_fires_on_schedule(self, tmp_path):
        injector = ChaosInjector(
            ChaosPlan(0, [FaultSpec("cache.enospc", times=1)])
        )
        cache = ChaosCache(str(tmp_path / "c"), injector)
        with pytest.raises(OSError) as excinfo:
            cache._write(str(tmp_path / "c"), str(tmp_path / "c/x.json"), "{}")
        assert excinfo.value.errno == errno.ENOSPC
        # schedule exhausted: the next write lands
        cache._write(str(tmp_path / "c"), str(tmp_path / "c/x.json"), "{}")
        assert os.path.exists(tmp_path / "c/x.json")

    def test_corrupt_tears_the_entry_after_write(self, tmp_path):
        injector = ChaosInjector(ChaosPlan(0, [FaultSpec("cache.corrupt")]))
        cache = ChaosCache(str(tmp_path / "c"), injector)
        payload = json.dumps({"schema": 1, "k": "v" * 50})
        path = str(tmp_path / "c/x.json")
        cache._write(str(tmp_path / "c"), path, payload)
        with open(path) as handle:
            torn = handle.read()
        assert torn == payload[: len(payload) // 3]
