"""Wire fault classes: truncated, corrupt, oversized, and stalled
frames.  The invariant under test: every request that reaches the
daemon gets exactly one response envelope, and no wire-level fault
wedges a handler thread or kills the daemon."""

import json
import socket
import threading
import time

import pytest

from repro.server import protocol
from repro.server.chaos import response_lines, send_raw
from repro.server.protocol import (
    FrameReader,
    FrameTooLarge,
    IdleTimeout,
    PartialFrameTimeout,
    TruncatedFrame,
)


class TestFrameReaderUnits:
    """FrameReader over a socketpair: each failure mode is distinct."""

    def _pair(self):
        a, b = socket.socketpair()
        return a, b

    def test_reads_complete_frames(self):
        a, b = self._pair()
        a.sendall(b'{"op":"ping"}\n{"op":"stats"}\n')
        reader = FrameReader(b)
        assert reader.read_frame() == b'{"op":"ping"}'
        assert reader.read_frame() == b'{"op":"stats"}'
        a.close()
        assert reader.read_frame() is None  # clean EOF between frames
        b.close()

    def test_frame_split_across_chunks(self):
        a, b = self._pair()
        reader = FrameReader(b)
        result = {}

        def read():
            result["frame"] = reader.read_frame(frame_deadline=5.0)

        thread = threading.Thread(target=read)
        thread.start()
        a.sendall(b'{"op":')
        time.sleep(0.05)
        a.sendall(b'"ping"}\n')
        thread.join(timeout=5.0)
        assert result["frame"] == b'{"op":"ping"}'
        a.close()
        b.close()

    def test_truncated_frame_raises(self):
        a, b = self._pair()
        a.sendall(b'{"op":"pi')  # no newline
        a.close()
        reader = FrameReader(b)
        with pytest.raises(TruncatedFrame):
            reader.read_frame()
        b.close()

    def test_oversized_frame_raises(self):
        a, b = self._pair()
        reader = FrameReader(b, max_bytes=64)
        a.sendall(b"x" * 200 + b"\n")
        with pytest.raises(FrameTooLarge):
            reader.read_frame()
        a.close()
        b.close()

    def test_oversized_without_newline_raises_early(self):
        a, b = self._pair()
        reader = FrameReader(b, max_bytes=64)
        a.sendall(b"y" * 200)  # still no terminator
        with pytest.raises(FrameTooLarge):
            reader.read_frame()
        a.close()
        b.close()

    def test_partial_frame_timeout(self):
        a, b = self._pair()
        a.sendall(b'{"op":')  # start a frame, then stall
        reader = FrameReader(b)
        started = time.monotonic()
        with pytest.raises(PartialFrameTimeout):
            reader.read_frame(frame_deadline=0.2)
        assert time.monotonic() - started < 5.0
        a.close()
        b.close()

    def test_idle_timeout_distinct_from_stall(self):
        a, b = self._pair()
        reader = FrameReader(b)
        with pytest.raises(IdleTimeout):
            reader.read_frame(idle_timeout=0.1, frame_deadline=10.0)
        a.close()
        b.close()


class TestDaemonWireFaults:
    """The live daemon answering raw (hostile) byte streams."""

    def test_garbage_json_gets_error_envelope(self, daemon):
        raw = send_raw(daemon.socket_path, b"this is not json\n")
        envelopes = response_lines(raw)
        assert len(envelopes) == 1
        assert envelopes[0]["ok"] is False
        assert "JSON" in envelopes[0]["error"] or "frame" in envelopes[0]["error"]

    def test_connection_survives_garbage_between_requests(self, daemon):
        # garbage then a valid ping on the same connection: the stream
        # resyncs at the newline and the ping still gets its envelope
        raw = send_raw(
            daemon.socket_path, b'not json\n{"op":"ping","telemetry":false}\n'
        )
        envelopes = response_lines(raw)
        assert len(envelopes) == 2
        assert envelopes[0]["ok"] is False
        assert envelopes[1]["ok"] is True
        assert isinstance(envelopes[1]["result"]["pid"], int)

    def test_truncated_frame_closes_silently(self, daemon):
        before = daemon.requests_served
        raw = send_raw(daemon.socket_path, b'{"op":"pi')  # EOF mid-frame
        assert response_lines(raw) == []  # peer is gone; nothing owed
        assert daemon.requests_served == before
        assert daemon.recorder.snapshot().counter("server.protocol_errors") >= 1

    def test_oversized_frame_answered_then_closed(self, tmp_path):
        from .conftest import start_daemon

        server, stop = start_daemon(tmp_path)
        try:
            server.frame_deadline = 5.0
            huge = b'{"op":"analyze","source":"' + b"x" * 256 + b'"}\n'
            with _small_frame_limit(64):
                raw = send_raw(server.socket_path, huge + b'{"op":"ping"}\n')
            envelopes = response_lines(raw)
            # exactly one error envelope, then the daemon closed: the
            # trailing ping on the poisoned stream is never answered
            assert len(envelopes) == 1
            assert envelopes[0]["ok"] is False
            assert "exceeds" in envelopes[0]["error"]
        finally:
            stop()

    def test_stalled_partial_frame_answered_then_closed(self, tmp_path):
        from .conftest import start_daemon

        server, stop = start_daemon(tmp_path, frame_deadline=0.2)
        try:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(5.0)
            sock.connect(server.socket_path)
            sock.sendall(b'{"op":"ana')  # start, then stall
            chunks = []
            while True:
                try:
                    chunk = sock.recv(1 << 16)
                except socket.timeout:
                    break
                if not chunk:
                    break
                chunks.append(chunk)
            sock.close()
            envelopes = response_lines(b"".join(chunks))
            assert len(envelopes) == 1
            assert envelopes[0]["ok"] is False
            assert "deadline" in envelopes[0]["error"]
            assert (
                server.recorder.snapshot().counter("server.protocol_errors")
                >= 1
            )
        finally:
            stop()

    def test_exactly_one_envelope_per_request(self, daemon):
        payload = b"".join(
            protocol.encode({"op": "ping", "telemetry": False})
            for _ in range(5)
        )
        raw = send_raw(daemon.socket_path, payload)
        envelopes = response_lines(raw)
        assert len(envelopes) == 5
        assert all(env["ok"] for env in envelopes)
        request_ids = [env["request_id"] for env in envelopes]
        assert len(set(request_ids)) == 5  # distinct ids, no double answers


class _small_frame_limit:
    """Temporarily shrink the daemon-side frame limit (module global)."""

    def __init__(self, limit: int):
        self.limit = limit

    def __enter__(self):
        self.saved = protocol.MAX_LINE_BYTES
        protocol.MAX_LINE_BYTES = self.limit
        return self

    def __exit__(self, *exc):
        protocol.MAX_LINE_BYTES = self.saved
