"""Shared fixtures for the deterministic chaos suite.

Every test here is seeded: fault schedules are pure functions of
``(seed, injection point, firing count)``, so a red run replays
exactly.  The daemon fixtures mirror ``tests/server`` (real Unix
socket, tmp-path cache) but expose the pieces chaos tests need to
reach: the server object, its socket, its recorder, and its cache
directory.
"""

import os
import threading
import time

import pytest

from repro.analysis.cache import ResultCache, reset_write_warning
from repro.obs import TraceRecorder
from repro.server import (
    AnalysisServer,
    ServerClient,
    ServerError,
    ServerUnavailable,
    reset_breakers,
)
from repro.server.chaos import uninstall


def _pool_available() -> bool:
    import concurrent.futures as futures

    try:
        with futures.ProcessPoolExecutor(max_workers=1) as pool:
            return pool.submit(int, 1).result(timeout=60) == 1
    except Exception:
        return False


needs_pool = pytest.mark.skipif(
    not _pool_available(), reason="process pools unavailable in this sandbox"
)


@pytest.fixture(autouse=True)
def _clean_chaos_state():
    """No chaos plan, breaker state, or warning latch leaks across tests."""
    uninstall()
    reset_breakers()
    reset_write_warning()
    yield
    uninstall()
    reset_breakers()
    reset_write_warning()
    os.environ.pop("REPRO_CHAOS", None)


def start_daemon(tmp_path, jobs=1, cache=None, **kwargs):
    """A running AnalysisServer on a tmp socket; returns (server, stop)."""
    socket_path = str(tmp_path / "served.sock")
    server = AnalysisServer(
        socket_path=socket_path,
        jobs=jobs,
        cache=cache,
        recorder=TraceRecorder(),
        **kwargs,
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    deadline = time.monotonic() + 5.0
    while not os.path.exists(socket_path):
        if time.monotonic() > deadline:
            pytest.fail("daemon socket never appeared")
        time.sleep(0.01)

    def stop():
        if thread.is_alive():
            try:
                ServerClient(socket_path).shutdown()
            except (ServerUnavailable, ServerError):
                pass
            thread.join(timeout=5.0)

    return server, stop


@pytest.fixture()
def daemon(tmp_path):
    """A plain jobs=1 daemon with a tmp cache (the common case)."""
    cache = ResultCache(str(tmp_path / "cache"))
    server, stop = start_daemon(tmp_path, cache=cache)
    yield server
    stop()


def corpus(tmp_path, n=3, marker=""):
    """n tiny scripts; ``marker`` is embedded in selected sources so
    substring-matched faults (worker.kill) hit exactly those files."""
    scripts = tmp_path / "scripts"
    scripts.mkdir(exist_ok=True)
    for index in range(n):
        tag = marker if marker and index == 0 else ""
        (scripts / f"s{index}.sh").write_text(f"echo {tag}run-{index}\n")
    return str(scripts)
