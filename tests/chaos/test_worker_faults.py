"""Worker-death fault class: a pool worker killed mid-batch (OOM-kill,
segfault) must cost a retry, never a lost file — and the daemon must
rebuild its pool inside the failing request so the next one runs warm.

The kill is injected through the ``REPRO_CHAOS`` environment variable
(pool workers pickle functions by name, so parent-side monkeypatching
cannot reach them): ``worker.kill`` with a source marker kills exactly
the worker that draws the marked file, deterministically.
"""

import pytest

from repro.analysis.cache import ResultCache
from repro.server import ServerClient
from repro.server.chaos import ChaosPlan, FaultSpec

from .conftest import corpus, needs_pool, start_daemon

MARKER = "CHAOS-KILL-ME"


@needs_pool
class TestDaemonPoolDeath:
    def test_worker_kill_mid_batch_recovers_in_request(
        self, tmp_path, monkeypatch
    ):
        plan = ChaosPlan(seed=0, faults=[FaultSpec("worker.kill", match=MARKER)])
        monkeypatch.setenv("REPRO_CHAOS", plan.to_json())
        scripts = corpus(tmp_path, n=4, marker=MARKER)
        cache = ResultCache(str(tmp_path / "cache"))
        server, stop = start_daemon(tmp_path, jobs=2, cache=cache)
        try:
            with ServerClient(server.socket_path) as client:
                batch = client.batch([scripts])
            # the envelope is well-formed and no file is missing: the
            # marked file was retried inline after its worker died
            assert len(batch.results) == 4
            assert not any(r.quarantined for r in batch.results)
            snapshot = server.recorder.snapshot()
            assert snapshot.counter("batch.worker_failures") >= 1
            assert snapshot.counter("batch.retries") >= 1
            assert snapshot.counter("server.pool_rebuilds") >= 1
            # the rebuild happened inside the failing request
            assert server.pool_alive()

            # follow-up request: fully warm, straight from the cache,
            # without tripping the (still armed) kill switch
            with ServerClient(server.socket_path) as client:
                again = client.batch([scripts])
            assert len(again.results) == 4
            assert all(r.cached for r in again.results)
            assert again.hits == 4
        finally:
            stop()

    def test_batch_output_matches_fault_free_run(self, tmp_path, monkeypatch):
        scripts = corpus(tmp_path, n=4, marker=MARKER)

        server, stop = start_daemon(
            tmp_path, jobs=2, cache=ResultCache(str(tmp_path / "healthy"))
        )
        try:
            with ServerClient(server.socket_path) as client:
                healthy = client.batch([scripts]).render()
        finally:
            stop()

        plan = ChaosPlan(seed=0, faults=[FaultSpec("worker.kill", match=MARKER)])
        monkeypatch.setenv("REPRO_CHAOS", plan.to_json())
        chaos_dir = tmp_path / "chaos-home"
        chaos_dir.mkdir()
        server, stop = start_daemon(
            chaos_dir, jobs=2, cache=ResultCache(str(tmp_path / "faulty"))
        )
        try:
            with ServerClient(server.socket_path) as client:
                faulty = client.batch([scripts]).render()
        finally:
            stop()
        assert faulty == healthy
