"""Cache fault classes: a full disk and bit rot must cost a counter,
never a result — and the output must be byte-identical to a fault-free
run (the cache is an accelerator, not a dependency)."""

import os
import warnings

import pytest

from repro.analysis import BatchConfig, run_batch
from repro.analysis.cache import ResultCache, cache_key, reset_write_warning
from repro.obs import TraceRecorder, use_recorder
from repro.server.chaos import ChaosCache, ChaosInjector, ChaosPlan, FaultSpec

from .conftest import corpus


def _render(tmp_path, cache):
    recorder = TraceRecorder()
    with use_recorder(recorder):
        batch = run_batch(
            [corpus(tmp_path)], config=BatchConfig(), jobs=1, cache=cache
        )
    return batch.render(), recorder.snapshot(), batch


class TestWriteFaults:
    def test_enospc_degrades_to_uncached_not_fatal(self, tmp_path):
        injector = ChaosInjector(ChaosPlan(0, [FaultSpec("cache.enospc")]))
        cache = ChaosCache(str(tmp_path / "cache"), injector)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            output, snapshot, batch = _render(tmp_path, cache)
        assert batch.results  # every file still analyzed
        assert snapshot.counter("batch.cache.write_errors") >= 3
        assert not os.path.exists(tmp_path / "cache") or not any(
            files for _, _, files in os.walk(tmp_path / "cache")
        )
        runtime = [w for w in caught if w.category is RuntimeWarning]
        assert len(runtime) == 1  # once per process, not per file

    def test_write_warning_fires_once_per_process(self, tmp_path):
        injector = ChaosInjector(ChaosPlan(0, [FaultSpec("cache.enospc")]))
        cache = ChaosCache(str(tmp_path / "cache"), injector)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with use_recorder(TraceRecorder()):
                assert cache.put("aa" * 32, {"schema": 1}) is False
                assert cache.put("bb" * 32, {"schema": 1}) is False
        assert len([w for w in caught if w.category is RuntimeWarning]) == 1
        reset_write_warning()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with use_recorder(TraceRecorder()):
                cache.put("cc" * 32, {"schema": 1})
        assert len([w for w in caught if w.category is RuntimeWarning]) == 1

    def test_output_byte_identical_to_fault_free_run(self, tmp_path):
        healthy, _, _ = _render(tmp_path, ResultCache(str(tmp_path / "h")))
        injector = ChaosInjector(ChaosPlan(0, [FaultSpec("cache.enospc")]))
        faulty, _, _ = _render(
            tmp_path, ChaosCache(str(tmp_path / "f"), injector)
        )
        uncached, _, _ = _render(tmp_path, None)
        assert faulty == healthy == uncached


class TestReadFaults:
    def test_corrupt_entry_reads_as_miss_and_counts(self, tmp_path):
        # healthy first run populates the cache
        cache_dir = str(tmp_path / "cache")
        _render(tmp_path, ResultCache(cache_dir))
        # tear every entry (bit rot)
        torn = 0
        for root, _, files in os.walk(cache_dir):
            for name in files:
                path = os.path.join(root, name)
                with open(path) as handle:
                    body = handle.read()
                with open(path, "w") as handle:
                    handle.write(body[: len(body) // 3])
                torn += 1
        assert torn >= 3
        output, snapshot, batch = _render(tmp_path, ResultCache(cache_dir))
        assert batch.results
        assert snapshot.counter("batch.cache.corrupt") >= 3
        assert snapshot.counter("batch.cache.hit") == 0
        # re-analysis repaired the cache: third run is all hits
        _, snapshot3, _ = _render(tmp_path, ResultCache(cache_dir))
        assert snapshot3.counter("batch.cache.hit") >= 3

    def test_chaos_torn_write_recovers_byte_identically(self, tmp_path):
        healthy, _, _ = _render(tmp_path, None)
        injector = ChaosInjector(ChaosPlan(0, [FaultSpec("cache.corrupt")]))
        cache = ChaosCache(str(tmp_path / "cache"), injector)
        first, _, _ = _render(tmp_path, cache)  # writes land torn
        second, snapshot, _ = _render(tmp_path, cache)  # reads the tears
        assert first == second == healthy
        assert snapshot.counter("batch.cache.corrupt") >= 3


class TestDegradedNeverCached:
    def test_degraded_results_skip_the_cache(self, tmp_path):
        scripts = tmp_path / "scripts"
        scripts.mkdir()
        for index in range(3):
            (scripts / f"s{index}.sh").write_text(
                "echo a\necho b\necho c\necho d\n"
            )
        cache_dir = str(tmp_path / "cache")
        config = BatchConfig(max_states=1)  # guarantees degradation
        with use_recorder(TraceRecorder()):
            batch = run_batch(
                [str(scripts)],
                config=config,
                jobs=1,
                cache=ResultCache(cache_dir),
            )
        assert batch.degraded
        entries = [
            name
            for _, _, files in os.walk(cache_dir)
            for name in files
        ]
        assert entries == []
