"""Unit + differential tests for arithmetic expansion."""

import shutil
import subprocess

import pytest

from repro.checkers import default_checkers
from repro.symex import Engine
from repro.symex.arith import ArithError, evaluate


def lookup_none(name):
    return None


def lookup(env):
    return lambda name: env.get(name)


class TestEvaluate:
    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("1+2", 3),
            ("2*3+4", 10),
            ("2+3*4", 14),
            ("(2+3)*4", 20),
            ("10/3", 3),
            ("-10/3", -3),
            ("10%3", 1),
            ("-7%2", -1),
            ("1<<4", 16),
            ("256>>4", 16),
            ("5&3", 1),
            ("5|3", 7),
            ("5^3", 6),
            ("~0", -1),
            ("1<2", 1),
            ("2<=2", 1),
            ("3>4", 0),
            ("1==1", 1),
            ("1!=1", 0),
            ("1&&0", 0),
            ("1||0", 1),
            ("!0", 1),
            ("!5", 0),
            ("-3", -3),
            ("+7", 7),
            ("0x1f", 31),
            ("010", 8),
            ("0", 0),
        ],
    )
    def test_concrete(self, expr, expected):
        assert evaluate(expr, lookup_none) == expected

    def test_variables(self):
        assert evaluate("X+1", lookup({"X": "41"})) == 42
        assert evaluate("X*Y", lookup({"X": "6", "Y": "7"})) == 42

    def test_dollar_variables(self):
        assert evaluate("$X+1", lookup({"X": "1"})) == 2

    def test_unset_variable_is_zero(self):
        assert evaluate("X+5", lookup({"X": ""})) == 5

    def test_symbolic_variable_gives_none(self):
        assert evaluate("X+1", lambda n: None if n == "X" else "") is None

    def test_division_by_zero(self):
        with pytest.raises(ArithError):
            evaluate("1/0", lookup_none)

    def test_malformed(self):
        with pytest.raises(ArithError):
            evaluate("1+", lookup_none)
        with pytest.raises(ArithError):
            evaluate("(1", lookup_none)


class TestEngineIntegration:
    def run_value(self, source):
        engine = Engine(checkers=default_checkers())
        result = engine.run_script(source)
        values = set()
        for state in result.states:
            value = state.get_var("OUT")
            if value is not None:
                values.add(value.concrete_value())
        return values

    def test_concrete_arith(self):
        assert self.run_value("OUT=$((2+3*4))") == {"14"}

    def test_arith_with_vars(self):
        assert self.run_value("N=5\nOUT=$((N*N))") == {"25"}

    def test_counter_increment(self):
        assert self.run_value("I=0\nI=$((I+1))\nI=$((I+1))\nOUT=$I") == {"2"}

    def test_symbolic_falls_back(self):
        engine = Engine(checkers=default_checkers())
        result = engine.run_script('OUT=$(($1+1))', n_args=1)
        for state in result.states:
            value = state.get_var("OUT")
            assert value.concrete_value() is None
            assert value.to_regex(state.store).matches("42")


SH = shutil.which("sh")


@pytest.mark.skipif(SH is None, reason="no /bin/sh")
class TestDifferential:
    EXPRS = [
        "1+2*3", "(4+5)%7", "100/7", "-9/2", "-9%2", "1<<5", "7&3", "7|8",
        "2<3", "3<=3", "4!=4", "1&&2", "0||0", "!3", "0x10+1", "~5",
    ]

    @pytest.mark.parametrize("expr", EXPRS)
    def test_agrees_with_sh(self, expr):
        script = f'echo $(({expr}))'
        expected = subprocess.run(
            [SH, "-c", script], capture_output=True, text=True
        ).stdout.strip()
        assert str(evaluate(expr, lookup_none)) == expected
