"""Advanced engine behaviours: redirects, fs persistence, refinement
precision, loops, functions, and state-merging mechanics."""

import pytest

from repro.checkers import default_checkers
from repro.fs import Existence, NodeKind, parse_sympath
from repro.rlang import Regex
from repro.symex import Engine
from repro.symstr import SymString


def run(source, n_args=0, **kwargs):
    return Engine(checkers=default_checkers(), **kwargs).run_script(source, n_args=n_args)


def final_var(result, name):
    values = set()
    for state in result.states:
        value = state.get_var(name)
        if value is not None:
            values.add(value.concrete_value())
    return values


class TestRedirects:
    def test_output_redirect_creates_file(self):
        result = run("echo hi >/tmp/out.txt")
        for state in result.states:
            node = state.fs.resolve(
                parse_sympath(SymString.lit("/tmp/out.txt")), create=False
            )
            assert node is not None
            assert state.fs.existence(node) is Existence.EXISTS

    def test_input_redirect_requires_file(self):
        result = run("rm -f /data.txt\nsort </data.txt")
        assert result.has("always-fails")

    def test_input_redirect_fine_when_present(self):
        result = run("echo x >/data.txt\nsort </data.txt")
        assert not result.has("always-fails")

    def test_redirect_on_compound(self):
        result = run("if true; then echo a; fi >/log.txt")
        for state in result.states:
            node = state.fs.resolve(
                parse_sympath(SymString.lit("/log.txt")), create=False
            )
            assert node is not None

    def test_append_also_writes(self):
        result = run("echo x >>/log")
        for state in result.states:
            node = state.fs.resolve(parse_sympath(SymString.lit("/log")), create=False)
            assert state.fs.existence(node) is Existence.EXISTS


class TestSubshellSemantics:
    def test_fs_effects_persist(self):
        # a subshell's file-system changes are real
        result = run("(touch /made-inside)\ncat /made-inside")
        assert not result.has("always-fails")

    def test_fs_deletions_persist(self):
        result = run("touch /f\n(rm -f /f)\ncat /f")
        assert result.has("always-fails")

    def test_variable_changes_do_not_persist(self):
        result = run("X=out\n(X=in)\nOUT=$X")
        assert final_var(result, "OUT") == {"out"}

    def test_constraint_refinements_persist(self):
        # facts about a pre-existing variable learned inside a subshell
        # are facts about the world
        result = run('(cd "$1") && rm -rf "$1"', n_args=1)
        # on the && path, cd succeeded so $1 was non-empty
        for state in result.states:
            if state.notes and any("rm" in n for n in state.notes):
                assert not state.params[1].could_be_empty(state.store)


class TestRefinementPrecision:
    def test_case_refines_subject(self):
        source = 'case "$1" in /*) OUT=abs ;; *) OUT=rel ;; esac'
        result = run(source, n_args=1)
        for state in result.states:
            out = state.get_var("OUT")
            if out is None:
                continue
            lang = state.params[1].to_regex(state.store)
            if out.concrete_value() == "abs":
                assert not lang.matches("relative/path")
            elif out.concrete_value() == "rel":
                assert not lang.matches("/absolute")

    def test_equality_refines_to_constant(self):
        source = 'if [ "$1" = "prod" ]; then OUT=yes; fi'
        result = run(source, n_args=1)
        for state in result.states:
            if (state.get_var("OUT") or SymString.empty()).concrete_value() == "yes":
                assert state.params[1].must_equal("prod", state.store)

    def test_inequality_excludes_constant(self):
        source = 'if [ "$1" != "x" ]; then OUT=ne; fi'
        result = run(source, n_args=1)
        for state in result.states:
            if (state.get_var("OUT") or SymString.empty()).concrete_value() == "ne":
                assert not state.params[1].could_equal("x", state.store)

    def test_sequential_refinements_accumulate(self):
        source = (
            'if [ -n "$1" ]; then if [ "$1" != "bad" ]; then OUT=ok; fi; fi'
        )
        result = run(source, n_args=1)
        for state in result.states:
            if (state.get_var("OUT") or SymString.empty()).concrete_value() == "ok":
                lang = state.params[1].to_regex(state.store)
                assert not lang.matches("")
                assert not lang.matches("bad")
                assert lang.matches("good")


class TestLoopsAndFunctions:
    def test_while_respects_bound(self):
        engine = Engine(checkers=default_checkers(), max_loop=3)
        result = engine.run_script("while [ -f /go ]; do X=ran; done")
        assert result.states  # terminates

    def test_recursive_function_bounded(self):
        result = run("f() { f; }\nf")
        assert result.states  # call-depth bound prevents divergence

    def test_function_shadows_spec(self):
        # a user-defined rm must not trigger deletion checking
        result = run('rm() { echo "not really"; }\nrm -rf /')
        assert not result.has("dangerous-deletion")

    def test_nested_function_calls(self):
        source = "inner() { OUT=$1; }\nouter() { inner \"$1-x\"; }\nouter a"
        result = run(source)
        assert final_var(result, "OUT") == {"a-x"}

    def test_until_loop_negates(self):
        result = run("until [ -f /done ]; do X=wait; done")
        assert result.states


class TestMergingMechanics:
    def test_convergent_branches_merge(self):
        engine = Engine(checkers=default_checkers(), prune=True)
        source = "\n".join(
            f"if [ -f /f{i} ]; then echo probe; fi" for i in range(6)
        )
        result = engine.run_script(source)
        assert len(result.states) == 1
        assert result.paths_merged >= 6

    def test_distinct_env_not_merged(self):
        engine = Engine(checkers=default_checkers(), prune=True)
        result = engine.run_script('if [ -f /f ]; then X=a; else X=b; fi')
        assert len(result.states) == 2

    def test_prune_off_keeps_worlds(self):
        engine = Engine(checkers=default_checkers(), prune=False)
        source = "\n".join(
            f"if [ -f /f{i} ]; then echo probe; fi" for i in range(4)
        )
        result = engine.run_script(source)
        assert len(result.states) == 16

    def test_diagnostics_survive_merging(self):
        engine = Engine(checkers=default_checkers(), prune=True)
        source = 'if [ -f /f ]; then rm -rf /; fi\necho done'
        result = engine.run_script(source)
        assert result.has("dangerous-deletion")


class TestHeredocs:
    def test_heredoc_parses_and_runs(self):
        result = run("cat <<EOF\nline one\nline two\nEOF\necho after")
        assert result.states

    def test_heredoc_does_not_touch_fs(self):
        result = run("cat <<EOF\nbody\nEOF")
        assert not result.has("always-fails")


class TestDynamicCommands:
    def test_dynamic_name_flagged(self):
        result = run('CMD=ls\n"$CMD" /tmp', n_args=0)
        # $CMD holds a concrete value, so this is NOT dynamic
        assert not result.has("dynamic-command")

    def test_truly_dynamic_name(self):
        result = run('"$1" /tmp', n_args=1)
        assert result.has("dynamic-command")

    def test_concrete_var_command_dispatches(self):
        result = run("CMD=rm\n$CMD -rf /\n")
        assert result.has("dangerous-deletion")


class TestCompoundPipelineStages:
    def test_subshell_stage(self):
        result = run("(echo a; echo b) | sort")
        assert result.states
        assert not result.has("always-fails")

    def test_brace_stage(self):
        result = run("{ echo a; echo b; } | wc -l")
        assert result.states

    def test_compound_stage_effects_apply(self):
        result = run("(touch /made) | cat\ncat /made")
        assert not result.has("always-fails")

    def test_mixed_pipeline_untyped_not_crashing(self):
        result = run("if true; then echo x; fi | sort")
        assert result.states

    def test_while_read_pipeline(self):
        result = run("cat /etc/passwd | while read -r line; do OUT=$line; done")
        assert result.states
