"""Unit tests for the symbolic engine: assignments, status, composition."""

import pytest

from repro.checkers import default_checkers
from repro.symex import Engine


def run(source, n_args=0, **kwargs):
    return Engine(checkers=default_checkers(), **kwargs).run_script(source, n_args=n_args)


def final_var(result, name):
    values = set()
    for state in result.states:
        value = state.get_var(name)
        if value is not None:
            values.add(value.concrete_value())
    return values


class TestAssignments:
    def test_simple_assignment(self):
        result = run("FOO=bar")
        assert final_var(result, "FOO") == {"bar"}

    def test_assignment_concatenation(self):
        result = run('A=x\nB="$A$A"')
        assert final_var(result, "B") == {"xx"}

    def test_assignment_from_cmdsub(self):
        result = run('OUT="$(echo hello)"')
        assert final_var(result, "OUT") == {"hello"}

    def test_cmdsub_strips_trailing_newline(self):
        result = run('OUT="$(echo hi)"')
        assert final_var(result, "OUT") == {"hi"}

    def test_nested_cmdsub(self):
        result = run('OUT="$(echo "$(echo deep)")"')
        assert final_var(result, "OUT") == {"deep"}

    def test_quoted_spaces_preserved(self):
        result = run("MSG='a  b'")
        assert final_var(result, "MSG") == {"a  b"}

    def test_unset_expands_empty(self):
        result = run('NOPE=x\nunset NOPE\nOUT="pre${NOPE}post"')
        assert final_var(result, "OUT") == {"prepost"}

    def test_undefined_variable_warned(self):
        # X is assigned somewhere in the script, so a path where it is
        # unset is a genuine maybe-unset bug (not an environment variable)
        result = run("if false; then X=1; fi\necho $X")
        assert result.has("undefined-variable")

    def test_never_assigned_var_is_environment(self):
        result = run("echo $PREFIX_FROM_ENV")
        assert result.has("env-variable")
        assert not result.has("undefined-variable")
        for state in result.states:
            value = state.get_var("PREFIX_FROM_ENV")
            assert value is not None and value.single_var() is not None

    def test_defined_variable_not_warned(self):
        result = run("X=1\necho $X")
        assert not result.has("undefined-variable")


class TestStatusAndComposition:
    def test_true_false(self):
        assert {s.status for s in run("true").states} == {0}
        assert {s.status for s in run("false").states} == {1}

    def test_sequence_status_is_last(self):
        assert {s.status for s in run("false; true").states} == {0}

    def test_and_short_circuit(self):
        result = run("false && OUT=ran")
        assert final_var(result, "OUT") == set()

    def test_and_executes_on_success(self):
        result = run("true && OUT=ran")
        assert final_var(result, "OUT") == {"ran"}

    def test_or_executes_on_failure(self):
        result = run("false || OUT=rescued")
        assert final_var(result, "OUT") == {"rescued"}

    def test_or_skips_on_success(self):
        result = run("true || OUT=no")
        assert final_var(result, "OUT") == set()

    def test_negated_pipeline(self):
        assert {s.status for s in run("! false").states} == {0}
        assert {s.status for s in run("! true").states} == {1}

    def test_exit_halts(self):
        result = run("exit 3\nOUT=unreachable")
        assert final_var(result, "OUT") == set()
        assert {s.status for s in result.states} == {3}

    def test_background_returns_zero(self):
        assert {s.status for s in run("false &").states} == {0}

    def test_subshell_env_isolated(self):
        result = run("X=outer\n(X=inner; echo $X)\nOUT=$X")
        assert final_var(result, "OUT") == {"outer"}

    def test_subshell_cd_isolated(self):
        result = run("cd /tmp\n(cd /etc)\nOUT=$PWD")
        # the subshell's cd cannot leak; cwd after is /tmp on the branch
        # where the outer cd succeeded
        assert "/tmp" in final_var(result, "OUT")

    def test_brace_group_env_shared(self):
        result = run("{ X=set; }\nOUT=$X")
        assert final_var(result, "OUT") == {"set"}


class TestControlFlow:
    def test_if_both_branches_explored(self):
        result = run('if [ -f /etc/x ]; then OUT=yes; else OUT=no; fi')
        assert final_var(result, "OUT") == {"yes", "no"}

    def test_if_concrete_condition(self):
        result = run('if true; then OUT=yes; else OUT=no; fi')
        assert final_var(result, "OUT") == {"yes"}

    def test_elif(self):
        result = run('if false; then OUT=a; elif true; then OUT=b; else OUT=c; fi')
        assert final_var(result, "OUT") == {"b"}

    def test_if_without_else_succeeds(self):
        result = run("if false; then OUT=x; fi")
        assert {s.status for s in result.states} == {0}

    def test_for_iterates(self):
        result = run("for f in a b; do LAST=$f; done")
        assert final_var(result, "LAST") == {"b"}

    def test_for_empty_list(self):
        result = run("for f in; do LAST=$f; done")
        assert final_var(result, "LAST") == set()

    def test_while_false_never_runs(self):
        result = run("while false; do OUT=ran; done")
        assert final_var(result, "OUT") == set()

    def test_while_explores_body(self):
        result = run("while [ -f /flag ]; do OUT=ran; done")
        assert "ran" in final_var(result, "OUT")

    def test_until_loop(self):
        result = run("until true; do OUT=never; done")
        assert final_var(result, "OUT") == set()

    def test_case_concrete_match(self):
        result = run('X=hello\ncase $X in h*) OUT=matched ;; *) OUT=other ;; esac')
        assert final_var(result, "OUT") == {"matched"}

    def test_case_fallthrough_to_star(self):
        result = run('X=zzz\ncase $X in a) OUT=a ;; *) OUT=star ;; esac')
        assert final_var(result, "OUT") == {"star"}

    def test_case_symbolic_subject_forks(self):
        result = run('case "$1" in a) OUT=a ;; b) OUT=b ;; esac', n_args=1)
        assert final_var(result, "OUT") >= {"a", "b"}

    def test_function_definition_and_call(self):
        result = run("f() { OUT=called; }\nf")
        assert final_var(result, "OUT") == {"called"}

    def test_function_args(self):
        result = run('f() { OUT=$1; }\nf hello')
        assert final_var(result, "OUT") == {"hello"}

    def test_function_return(self):
        result = run("f() { return 2; OUT=unreached; }\nf")
        assert final_var(result, "OUT") == set()
        assert {s.status for s in result.states} == {2}


class TestBuiltins:
    def test_echo_output_captured(self):
        result = run('OUT="$(echo one two)"')
        assert final_var(result, "OUT") == {"one two"}

    def test_echo_n(self):
        result = run('OUT="$(echo -n x)"')
        assert final_var(result, "OUT") == {"x"}

    def test_pwd_reflects_cd(self):
        result = run('cd /srv/app\nOUT="$(pwd)"')
        assert "/srv/app" in final_var(result, "OUT")

    def test_cd_updates_pwd_var(self):
        result = run("cd /opt\nOUT=$PWD")
        assert "/opt" in final_var(result, "OUT")

    def test_cd_failure_branch_exists(self):
        result = run('cd "$1"', n_args=1)
        assert {s.status for s in result.states} >= {0, 1}

    def test_export(self):
        result = run("export NAME=value\nOUT=$NAME")
        assert final_var(result, "OUT") == {"value"}

    def test_unset(self):
        result = run("X=1\nunset X\necho $X")
        assert result.has("undefined-variable")

    def test_shift(self):
        result = run('shift\nOUT=$1', n_args=2)
        values = set()
        for state in result.states:
            value = state.get_var("1")
            if value is not None:
                values.add(state.store.label(value.single_var()))
        assert "$2" in values

    def test_read_forks_eof(self):
        result = run("read LINE")
        assert {s.status for s in result.states} == {0, 1}

    def test_test_string_equality(self):
        result = run('X=a\nif [ "$X" = "a" ]; then OUT=eq; else OUT=ne; fi')
        assert final_var(result, "OUT") == {"eq"}

    def test_test_numeric(self):
        result = run('if [ 3 -gt 2 ]; then OUT=yes; fi')
        assert final_var(result, "OUT") == {"yes"}

    def test_test_z_refines(self):
        result = run('if [ -z "$1" ]; then OUT=empty; else OUT=full; fi', n_args=1)
        assert final_var(result, "OUT") == {"empty", "full"}
        # on the "full" branch, $1 can no longer be empty
        for state in result.states:
            if state.get_var("OUT") and state.get_var("OUT").concrete_value() == "full":
                assert not state.params[1].could_be_empty(state.store)

    def test_arith_expansion_is_numeric(self):
        result = run('OUT=$((1+2))')
        for state in result.states:
            value = state.get_var("OUT")
            assert value.to_regex(state.store).matches("3")
            assert not value.to_regex(state.store).matches("x")
