"""`break` / `continue` builtins and their loop-control semantics."""

from repro.analysis import analyze
from repro.symex import Engine


def run(source, **kwargs):
    engine = Engine(checkers=[], **kwargs)
    return engine.run_script(source)


class TestBreak:
    def test_break_is_a_builtin(self):
        # the original bug: `break` reported info[unknown-command]
        report = analyze("until false; do break; done")
        assert not report.has("unknown-command")

    def test_continue_is_a_builtin(self):
        report = analyze("while true; do continue; done")
        assert not report.has("unknown-command")

    def test_break_exits_infinite_loop_cleanly(self):
        result = run("while true; do break; done")
        assert result.states
        for state in result.states:
            assert state.status == 0
            assert state.loop_control is None
            # no "loop truncated" note: the exit was explicit
            assert not any("truncated" in n for n in state.notes)

    def test_break_skips_rest_of_body(self):
        # mkdir after break is never reached: no CREATE on any trace
        from repro.fs import FsOp

        result = run("while true; do break; mkdir /opt/d; done")
        assert result.states
        for state in result.states:
            assert not any(e.op is FsOp.CREATE for e in state.fs.log)

    def test_code_after_loop_runs(self):
        result = run("while true; do break; done\nx=after")
        assert result.states
        for state in result.states:
            assert state.env["x"].concrete_value() == "after"

    def test_break_in_for_loop(self):
        # break on the first value: the loop variable never advances
        result = run("for i in a b c; do break; done")
        assert result.states
        for state in result.states:
            assert state.env["i"].concrete_value() == "a"
            assert state.loop_control is None

    def test_break_in_until_loop(self):
        result = run("until false; do break; done")
        assert result.states
        for state in result.states:
            assert state.status == 0


class TestContinue:
    def test_continue_skips_rest_of_body(self):
        from repro.fs import FsOp

        result = run("for i in a b; do continue; mkdir /opt/d; done")
        assert result.states
        for state in result.states:
            assert not any(e.op is FsOp.CREATE for e in state.fs.log)

    def test_continue_advances_for_values(self):
        result = run("for i in a b c; do continue; done")
        assert result.states
        # every value was visited; the variable holds the last one
        for state in result.states:
            assert state.env["i"].concrete_value() == "c"
            assert state.loop_control is None


class TestLevels:
    def test_break_two_exits_both_loops(self):
        result = run(
            "while true; do while true; do break 2; done; done\nx=out"
        )
        assert result.states
        for state in result.states:
            assert state.env["x"].concrete_value() == "out"
            assert state.loop_control is None

    def test_break_level_clamped_to_depth(self):
        # bash clamps N to the number of enclosing loops
        result = run("while true; do break 5; done\nx=out")
        assert result.states
        for state in result.states:
            assert state.env["x"].concrete_value() == "out"
            assert state.loop_control is None

    def test_continue_two(self):
        from repro.fs import FsOp

        result = run(
            "for i in a b; do for j in x y; do continue 2; "
            "mkdir /opt/d; done; done"
        )
        assert result.states
        for state in result.states:
            assert not any(e.op is FsOp.CREATE for e in state.fs.log)
            assert state.loop_control is None


class TestOutsideLoop:
    def test_break_outside_loop_reports_info(self):
        report = analyze("break")
        assert report.has("loop-control-outside-loop")
        assert not report.has("unknown-command")

    def test_continue_outside_loop_reports_info(self):
        report = analyze("continue")
        assert report.has("loop-control-outside-loop")

    def test_outside_loop_is_not_fatal(self):
        result = run("break\nx=alive")
        assert result.states
        for state in result.states:
            assert state.env["x"].concrete_value() == "alive"


class TestBoundaries:
    def test_subshell_confines_break(self):
        # a subshell cannot break its parent's loop; `break` inside it is
        # outside any loop of its own
        report = analyze("while true; do (break); done")
        assert report.has("loop-control-outside-loop")

    def test_break_in_condition(self):
        result = run("while break; do x=body; done\ny=after")
        assert result.states
        for state in result.states:
            assert "x" not in state.env
            assert state.env["y"].concrete_value() == "after"

    def test_function_propagates_break(self):
        # bash: break inside a function breaks the caller's loop
        result = run("f() { break; }\nwhile true; do f; done\nx=out")
        assert result.states
        for state in result.states:
            assert state.env["x"].concrete_value() == "out"

    def test_command_substitution_confines_break(self):
        report = analyze("while true; do x=$(break); break; done")
        assert report.has("loop-control-outside-loop")

    def test_no_state_leak_after_loop(self):
        # loop_control never survives past its loop
        result = run("for i in a b; do break; done; for j in c d; do :; done")
        assert result.states
        for state in result.states:
            assert state.loop_control is None
            assert state.env["j"].concrete_value() == "d"
