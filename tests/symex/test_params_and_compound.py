"""Tests for "$@" field semantics and compound test expressions."""

import shutil
import subprocess

import pytest

from repro.checkers import default_checkers
from repro.symex import Engine


def run(source, n_args=0):
    return Engine(checkers=default_checkers()).run_script(source, n_args=n_args)


def final_var(result, name):
    values = set()
    for state in result.states:
        value = state.get_var(name)
        if value is not None:
            values.add(value.concrete_value())
    return values


class TestAtParams:
    def test_quoted_at_preserves_count(self):
        result = run('f() { OUT=$#; }\nf "$@"', n_args=3)
        assert final_var(result, "OUT") == {"3"}

    def test_at_with_no_args(self):
        result = run('f() { OUT=$#; }\nf "$@"', n_args=0)
        assert final_var(result, "OUT") == {"0"}

    def test_at_forwards_symbolic_values(self):
        result = run('f() { OUT=$2; }\nf "$@"', n_args=2)
        for state in result.states:
            value = state.get_var("OUT")
            if value is not None:
                assert value.single_var() is not None

    def test_star_joins(self):
        result = run('f() { OUT=$#; }\nf "$*"', n_args=2)
        assert final_var(result, "OUT") == {"1"}

    def test_wrapper_script_pattern(self):
        # the classic argument-forwarding wrapper keeps deletion analysis
        result = run('doit() { rm -rf "$1"; }\ndoit "$@"', n_args=1)
        assert result.has("dangerous-deletion")


class TestCompoundTest:
    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("[ a = a -a b = b ]", 0),
            ("[ a = a -a b = c ]", 1),
            ("[ a = b -a c = c ]", 1),
            ("[ a = b -o c = c ]", 0),
            ("[ a = b -o c = d ]", 1),
            ("[ a = a -o c = d ]", 0),
            ("[ 1 -lt 2 -a 3 -lt 4 ]", 0),
            ("[ a = a -a b = b -a c = c ]", 0),
            ("[ a = x -o b = x -o c = c ]", 0),
            # -a binds tighter than -o: F -a F -o T == (F -a F) -o T == T
            ("[ a = b -a c = d -o e = e ]", 0),
            ("! [ a = a -a b = b ]", 1),
        ],
    )
    def test_compound_status(self, expr, expected):
        result = run(expr)
        assert {s.status for s in result.states} == {expected}, expr

    def test_compound_refines(self):
        source = 'if [ -n "$1" -a "$1" != "skip" ]; then OUT=go; fi'
        result = run(source, n_args=1)
        for state in result.states:
            out = state.get_var("OUT")
            if out is not None and out.concrete_value() == "go":
                lang = state.params[1].to_regex(state.store)
                assert not lang.matches("")
                assert not lang.matches("skip")


SH = shutil.which("sh")


@pytest.mark.skipif(SH is None, reason="no /bin/sh")
class TestDifferentialCompound:
    EXPRS = [
        "[ a = a -a b = b ]",
        "[ a = b -o c = c ]",
        "[ a = b -a c = d -o e = e ]",
        "[ 1 -lt 2 -a 5 -gt 9 ]",
    ]

    @pytest.mark.parametrize("expr", EXPRS)
    def test_agrees_with_sh(self, expr):
        expected = subprocess.run(
            [SH, "-c", expr], capture_output=True, timeout=5
        ).returncode
        result = run(expr)
        assert {s.status for s in result.states} == {expected}
