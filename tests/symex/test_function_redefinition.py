"""Regression: a later redefinition of a function must shadow the
earlier one at *call* time, in every forked state.

The engine binds ``FunctionDef`` at definition time (correct — POSIX
functions are dynamic bindings), but path merging used to ignore the
function table: a path that redefined ``f`` could be merged into a
sibling that kept the original body, and the redefinition silently
vanished at the next call site.
"""

from repro.analysis import analyze
from repro.symex import Engine
from repro.symex.state import SymState


def _codes(report):
    return [d.code for d in report.diagnostics]


class TestRedefinitionShadowing:
    def test_straight_line_redefinition_shadows(self):
        report = analyze(
            "f() { echo safe; }\n"
            "f() { rm -rf \"$HOME/\"; }\n"
            "f\n"
        )
        assert "dangerous-deletion" in _codes(report)

    def test_call_between_definitions_uses_each_binding(self):
        # the first call sees the safe body, the second the dangerous one
        report = analyze(
            "f() { echo safe; }\n"
            "f\n"
            "f() { rm -rf \"$HOME/\"; }\n"
            "f\n"
        )
        assert "dangerous-deletion" in _codes(report)

    def test_redefinition_in_branch_survives_merge(self):
        # the danger lives only on the else path; merging it into the
        # then path's state used to drop the redefined body entirely
        report = analyze(
            "f() { echo safe; }\n"
            "if [ -f /tmp/marker ]; then\n"
            "  :\n"
            "else\n"
            "  f() { rm -rf \"$HOME/\"; }\n"
            "fi\n"
            "f\n"
        )
        assert "dangerous-deletion" in _codes(report)

    def test_prune_keeps_states_with_distinct_bindings(self):
        engine = Engine()
        body_a = object()
        body_b = object()
        s1 = SymState(functions={"f": body_a}, status=0)
        s2 = SymState(functions={"f": body_b}, status=0)
        assert len(engine._prune([s1, s2])) == 2

    def test_prune_still_merges_identical_bindings(self):
        engine = Engine()
        body = object()
        s1 = SymState(functions={"f": body}, status=0)
        s2 = SymState(functions={"f": body}, status=0)
        assert len(engine._prune([s1, s2])) == 1
