"""Regression tests for unknown-at-entry argv (POSIX start-up semantics).

A script's positional parameters are whatever the caller passes — not
concretely empty.  Modelling them as empty made the analyzer report
`dead-case-branch` for every static arm of ``case "$1" in ...`` and mark
everything after an ``if [ "$#" -lt 1 ]; then exit 1; fi`` prologue as
unreachable: two always-fire false positives on the most common script
idioms there are.
"""

from repro.analysis import analyze
from repro.checkers import default_checkers
from repro.symex import Engine


def run(source, n_args=None, args=None):
    return Engine(checkers=default_checkers()).run_script(
        source, n_args=n_args, args=args
    )


class TestCaseArmFeasibility:
    def test_case_on_dollar1_is_not_dead(self):
        # the headline false positive: a literal arm on an unconstrained $1
        report = analyze('case "$1" in foo) echo hi;; esac\n')
        assert not report.diagnostics

    def test_case_multiple_arms_not_dead(self):
        report = analyze(
            'case "$1" in start) echo s;; stop) echo t;; *) echo other;; esac\n'
        )
        assert [d for d in report.diagnostics if d.code == "dead-case-branch"] == []

    def test_assigned_subject_still_reports_dead_arm(self):
        # soundness check: a *known* subject keeps its dead-arm reporting
        report = analyze('x=foo\ncase "$x" in bar) echo no;; esac\n')
        assert any(d.code == "dead-case-branch" for d in report.diagnostics)

    def test_concretized_argv_reports_dead_arm(self):
        # --args re-concretizes argv: now the arm really is infeasible
        report = analyze('case "$1" in foo) echo hi;; esac\n', args=["zap"])
        assert any(d.code == "dead-case-branch" for d in report.diagnostics)

    def test_concretized_argv_matching_arm_clean(self):
        report = analyze('case "$1" in foo) echo hi;; esac\n', args=["foo"])
        assert not report.diagnostics

    def test_explicit_empty_argv_keeps_old_semantics(self):
        # n_args=0 is the legacy "concretely no arguments" model
        report = analyze('case "$1" in foo) echo hi;; esac\n', n_args=0)
        assert any(d.code == "dead-case-branch" for d in report.diagnostics)

    def test_set_concretizes_then_dead_arm(self):
        report = analyze('set -- a b\ncase "$1" in c) echo no;; esac\n')
        assert any(d.code == "dead-case-branch" for d in report.diagnostics)

    def test_case_arm_refines_dollar1(self):
        # inside the arm, $1 is known to match the pattern
        result = run('case "$1" in foo) x=in;; esac\necho done\n')
        assert result.states  # both took-arm and fell-through paths survive


class TestArgcGuard:
    def test_argc_guard_does_not_kill_the_script(self):
        # the other headline false positive: the ubiquitous arg-count guard
        report = analyze('if [ "$#" -lt 1 ]; then exit 1; fi\necho "$1"\n')
        assert not report.diagnostics

    def test_argc_guard_unreachable_with_explicit_zero(self):
        report = analyze(
            'if [ "$#" -lt 1 ]; then exit 1; fi\necho "$1"\n', n_args=0
        )
        assert any(d.code == "unreachable-command" for d in report.diagnostics)

    def test_argc_is_concrete_with_explicit_count(self):
        result = run("OUT=$#\n", n_args=2)
        values = {
            st.get_var("OUT").concrete_value()
            for st in result.states
            if st.get_var("OUT") is not None
        }
        assert values == {"2"}

    def test_argc_concrete_with_args(self):
        result = run("OUT=$#\n", args=["a", "b", "c"])
        values = {
            st.get_var("OUT").concrete_value()
            for st in result.states
            if st.get_var("OUT") is not None
        }
        assert values == {"3"}

    def test_argc_symbolic_by_default(self):
        result = run("OUT=$#\n")
        for st in result.states:
            value = st.get_var("OUT")
            assert value is not None and value.concrete_value() is None


class TestShiftAndSet:
    def test_shift_loop_terminates_cleanly(self):
        report = analyze('while [ "$#" -gt 0 ]; do echo "$1"; shift; done\n')
        assert not report.diagnostics

    def test_set_dashdash_concretizes(self):
        result = run('set -- a b\nOUT=$#\n')
        values = {
            st.get_var("OUT").concrete_value()
            for st in result.states
            if st.get_var("OUT") is not None
        }
        assert values == {"2"}

    def test_set_dashdash_values(self):
        result = run('set -- hello\nOUT=$1\n')
        values = {
            st.get_var("OUT").concrete_value()
            for st in result.states
            if st.get_var("OUT") is not None
        }
        assert values == {"hello"}

    def test_set_options_do_not_touch_argv(self):
        result = run("set -e\nOUT=$#\n", n_args=2)
        values = {
            st.get_var("OUT").concrete_value()
            for st in result.states
            if st.get_var("OUT") is not None
        }
        assert values == {"2"}

    def test_shift_resets_symbolic_count(self):
        # after a shift under unknown argv, $# must be a *fresh* unknown
        result = run("A=$#\nshift\nB=$#\n")
        for st in result.states:
            a, b = st.get_var("A"), st.get_var("B")
            assert a is not None and b is not None
            assert a.single_var() != b.single_var()


class TestDollarAtLoops:
    def test_for_over_at_runs_zero_or_more(self):
        # both "no args" and "some args" worlds must be explored
        result = run('HIT=no\nfor a in "$@"; do HIT=yes; done\nOUT=$HIT\n')
        values = {
            st.get_var("OUT").concrete_value()
            for st in result.states
            if st.get_var("OUT") is not None
        }
        assert values == {"no", "yes"}

    def test_bare_for_iterates_argv(self):
        result = run("HIT=no\nfor a; do HIT=yes; done\nOUT=$HIT\n")
        values = {
            st.get_var("OUT").concrete_value()
            for st in result.states
            if st.get_var("OUT") is not None
        }
        assert values == {"no", "yes"}

    def test_for_over_at_body_checks_fire(self):
        result = run('for f in "$@"; do rm -rf "$f"; done\n')
        assert result.has("dangerous-deletion")

    def test_lazy_dollar_n_memoised_per_path(self):
        # $2 materialises once per path: two reads agree
        result = run("A=$2\nB=$2\n")
        for st in result.states:
            a, b = st.get_var("A"), st.get_var("B")
            assert a.single_var() == b.single_var()

    def test_known_count_preserved_in_functions(self):
        # call argv has a known count even when script argv is unknown
        result = run('f() { OUT=$#; }\nf one two\n')
        values = {
            st.get_var("OUT").concrete_value()
            for st in result.states
            if st.get_var("OUT") is not None
        }
        assert values == {"2"}


class TestGetopts:
    def test_getopts_is_known_and_binds_its_variable(self):
        report = analyze('while getopts "ab:c" opt; do echo "$opt"; done\n')
        assert not any(d.code == "unknown-command" for d in report.diagnostics)
        assert not any(d.code == "env-variable" for d in report.diagnostics)

    def test_getopts_case_dispatch_clean(self):
        report = analyze(
            'while getopts "ab:" opt; do\n'
            "  case \"$opt\" in\n"
            "    a) echo A;;\n"
            "    b) echo \"$OPTARG\";;\n"
            "    ?) exit 2;;\n"
            "  esac\n"
            "done\n"
        )
        assert not report.diagnostics

    def test_getopts_dead_arm_for_unknown_letter(self):
        # z is not in the optstring: its arm is infeasible
        report = analyze(
            'while getopts "ab" opt; do\n'
            "  case \"$opt\" in\n"
            "    z) echo impossible;;\n"
            "  esac\n"
            "done\n"
        )
        assert any(d.code == "dead-case-branch" for d in report.diagnostics)

    def test_getopts_has_no_fs_effects(self):
        result = run('getopts "a" opt\n')
        for st in result.states:
            assert not list(st.fs.log)

    def test_getopts_optind_bound(self):
        result = run('getopts "a" opt\nOUT=$OPTIND\n')
        assert any(
            st.get_var("OUT") is not None for st in result.states
        )
