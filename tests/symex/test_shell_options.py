"""Tests for `set -e` (errexit) and `set -u` (nounset) modeling."""

import shutil
import subprocess

import pytest

from repro.checkers import default_checkers
from repro.symex import Engine


def run(source, n_args=0):
    return Engine(checkers=default_checkers()).run_script(source, n_args=n_args)


def final_var(result, name):
    values = set()
    for state in result.states:
        value = state.get_var(name)
        if value is not None:
            values.add(value.concrete_value())
    return values


class TestErrexit:
    def test_failure_aborts(self):
        result = run("set -e\nfalse\nOUT=unreachable")
        assert final_var(result, "OUT") == set()

    def test_success_continues(self):
        result = run("set -e\ntrue\nOUT=reached")
        assert final_var(result, "OUT") == {"reached"}

    def test_without_e_continues(self):
        result = run("false\nOUT=reached")
        assert final_var(result, "OUT") == {"reached"}

    def test_condition_context_exempt(self):
        result = run("set -e\nif false; then OUT=then; else OUT=else; fi\nDONE=yes")
        assert final_var(result, "DONE") == {"yes"}
        assert final_var(result, "OUT") == {"else"}

    def test_andor_left_exempt(self):
        result = run("set -e\nfalse || OUT=rescued\nDONE=yes")
        assert final_var(result, "DONE") == {"yes"}

    def test_set_plus_e_disables(self):
        result = run("set -e\nset +e\nfalse\nOUT=reached")
        assert final_var(result, "OUT") == {"reached"}

    def test_symbolic_failure_branch_halts(self):
        # a command with unknown status: the failing world aborts, the
        # succeeding world continues
        result = run('set -e\ncd "$1"\nOUT=after', n_args=1)
        values = final_var(result, "OUT")
        assert "after" in values
        halted = [s for s in result.states if s.halted]
        assert halted


class TestNounset:
    def test_unset_aborts(self):
        result = run("set -u\nX=1\nunset X\necho $X\nOUT=unreachable")
        assert result.has("nounset-abort")
        assert final_var(result, "OUT") == set()

    def test_set_variable_fine(self):
        result = run("set -u\nX=1\necho $X\nOUT=ok")
        assert final_var(result, "OUT") == {"ok"}

    def test_default_expansion_protects(self):
        result = run('set -u\nX=1\nunset X\nOUT="${X:-fallback}"')
        assert not result.has("nounset-abort")
        assert final_var(result, "OUT") == {"fallback"}


SH = shutil.which("sh")


@pytest.mark.skipif(SH is None, reason="no /bin/sh")
class TestDifferentialOptions:
    def run_sh(self, script):
        return subprocess.run(
            [SH, "-c", script], capture_output=True, text=True, timeout=5
        )

    def test_errexit_agrees(self):
        script = 'set -e\nfalse\necho reached'
        completed = self.run_sh(script)
        assert completed.stdout == ""  # sh aborts before echo
        result = run(script)
        assert all(s.halted or s.status != 0 for s in result.states)

    def test_errexit_condition_agrees(self):
        script = 'set -e\nif false; then :; fi\necho reached'
        completed = self.run_sh(script)
        assert "reached" in completed.stdout
        result = run(script + "\nOUT=done")
        assert final_var(result, "OUT") == {"done"}
