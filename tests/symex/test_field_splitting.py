"""Tests for POSIX field splitting of unquoted expansions."""

import shutil
import subprocess

import pytest

from repro.checkers import default_checkers
from repro.symex import Engine


def run(source, n_args=0):
    return Engine(checkers=default_checkers()).run_script(source, n_args=n_args)


def final_var(result, name):
    values = set()
    for state in result.states:
        value = state.get_var(name)
        if value is not None:
            values.add(value.concrete_value())
    return values


class TestSplitting:
    def test_flags_variable_splits(self):
        # rm receives -r and -f as separate arguments: the recursive
        # clause applies and the directory is deleted
        result = run('FLAGS="-r -f"\nmkdir -p /d/sub\nrm $FLAGS /d\ncat /d/sub/x')
        assert result.has("always-fails")

    def test_quoted_does_not_split(self):
        result = run('X="a b"\nf() { OUT=$#; }\nf "$X"')
        assert final_var(result, "OUT") == {"1"}

    def test_unquoted_splits_into_args(self):
        result = run('X="a b"\nf() { OUT=$#; }\nf $X')
        assert final_var(result, "OUT") == {"2"}

    def test_attached_literal_joins_first_field(self):
        result = run('X="a b"\nf() { OUT=$1; }\nf pre$X')
        assert final_var(result, "OUT") == {"prea"}

    def test_quoted_inner_space_survives(self):
        result = run("X=c\nf() { OUT=$#; }\nf 'a b'$X")
        assert final_var(result, "OUT") == {"1"}

    def test_empty_unquoted_vanishes(self):
        result = run('E=""\nf() { OUT=$#; }\nf $E x')
        assert final_var(result, "OUT") == {"1"}

    def test_empty_quoted_survives(self):
        result = run('E=""\nf() { OUT=$#; }\nf "$E" x')
        assert final_var(result, "OUT") == {"2"}

    def test_whitespace_only_vanishes(self):
        result = run('W="   "\nf() { OUT=$#; }\nf $W x')
        assert final_var(result, "OUT") == {"1"}

    def test_leading_trailing_whitespace(self):
        result = run('X=" a "\nf() { OUT=$1; }\nf $X')
        assert final_var(result, "OUT") == {"a"}

    def test_for_loop_over_split_list(self):
        result = run('LIST="one two"\nfor w in $LIST; do OUT=$w; done')
        assert final_var(result, "OUT") == {"two"}

    def test_symbolic_not_split(self):
        # an unconstrained value may contain spaces; we conservatively
        # keep it as one argument
        result = run('f() { OUT=$#; }\nf $1', n_args=1)
        assert final_var(result, "OUT") == {"1"}

    def test_assignment_never_splits(self):
        result = run('X="a b"\nY=$X\nf() { OUT=$#; }\nf "$Y"')
        assert final_var(result, "OUT") == {"1"}

    def test_cmdsub_splits(self):
        result = run('f() { OUT=$#; }\nf $(echo one two)')
        assert final_var(result, "OUT") == {"2"}

    def test_quoted_cmdsub_does_not_split(self):
        result = run('f() { OUT=$#; }\nf "$(echo one two)"')
        assert final_var(result, "OUT") == {"1"}


SH = shutil.which("sh")


@pytest.mark.skipif(SH is None, reason="no /bin/sh")
class TestDifferentialSplitting:
    CASES = [
        ('X="a b"', "$X"),
        ('X="a b"', '"$X"'),
        ('X=" a  b "', "$X"),
        ('X=""', "$X x"),
        ('X=""', '"$X" x'),
        ('X="a b"', "pre$X"),
        ("X=c", "'a b'$X"),
        ('X="a b c"', "$X tail"),
    ]

    @pytest.mark.parametrize("setup,args", CASES)
    def test_argument_count_agrees(self, setup, args):
        script = f"{setup}\nf() {{ OUT=$#; }}\nf {args}\n"
        expected = subprocess.run(
            [SH, "-c", script + 'printf %s "$OUT"'],
            capture_output=True, text=True, timeout=5,
        ).stdout
        assert final_var(run(script), "OUT") == {expected}
