"""The paper's worked examples, end to end through the engine.

These are the core reproduction targets (DESIGN.md E1-E6): each figure
of the paper must produce exactly the analysis outcome the paper claims.
"""

import pytest

from repro.checkers import PlatformChecker, default_checkers
from repro.symex import Engine

FIG1 = """#!/bin/sh
STEAMROOT="$(cd "${0%/*}" && echo $PWD)"
# ... more lines ...
rm -fr "$STEAMROOT"/*
"""

FIG2 = """#!/bin/sh
STEAMROOT="$(cd "${0%/*}" && echo $PWD)"

if [ "$(realpath "$STEAMROOT/")" != "/" ]; then
  rm -fr "$STEAMROOT"/*
else
  echo "Bad script path: $0"; exit 1
fi
"""

FIG3 = """#!/bin/sh
STEAMROOT="$(cd "${0%/*}" && echo $PWD)"

if [ "$(realpath "$STEAMROOT/")" = "/" ]; then
  rm -fr "$STEAMROOT"/*
else
  echo "Bad script path: $0"; exit 1
fi
"""

FIG5 = """#!/bin/sh
STEAMROOT="$(cd "${0%/*}" && echo $PWD)"/
case $(lsb_release -a | grep '^desc' | cut -f 2) in
  Debian) SUFFIX=".config/steam" ;;
  *Linux) SUFFIX=".steam" ;;
esac
rm -fr $STEAMROOT$SUFFIX
"""

FIG5_FIXED = FIG5.replace("'^desc'", "'^Desc'")


def analyze(source, n_args=0, **kwargs):
    engine = Engine(checkers=default_checkers(), **kwargs)
    return engine.run_script(source, n_args=n_args)


class TestFig1:
    """E1: the original Steam bug must be flagged."""

    def test_dangerous_deletion_flagged(self):
        result = analyze(FIG1)
        assert result.has("dangerous-deletion")

    def test_empty_steamroot_is_definite(self):
        result = analyze(FIG1)
        always = [d for d in result.by_code("dangerous-deletion") if d.always]
        assert always, "the cd-failed path deletes /* unconditionally"

    def test_both_cd_outcomes_explored(self):
        result = analyze(FIG1)
        statuses = {s.status for s in result.states}
        assert len(result.states) >= 2


class TestFig2:
    """E2: the guarded fix is safe — no deletion warning on any path."""

    def test_no_dangerous_deletion(self):
        result = analyze(FIG2)
        assert not result.has("dangerous-deletion")
        assert not result.has("home-deletion")

    def test_guard_refines_both_branches(self):
        result = analyze(FIG2)
        # some path reaches the else (exit 1), some reaches rm
        assert {s.status for s in result.states} >= {0, 1}


class TestFig3:
    """E3: the inverted guard (one character away) must be flagged."""

    def test_dangerous_deletion_flagged(self):
        result = analyze(FIG3)
        assert result.has("dangerous-deletion")

    def test_single_character_difference(self):
        assert len(FIG2) - len(FIG3) == 1  # "!=" vs "="


class TestFig5:
    """E4: stream reasoning catches the dead grep filter."""

    def test_dead_stream(self):
        result = analyze(FIG5)
        dead = result.by_code("dead-stream")
        assert dead and dead[0].always
        assert "grep" in dead[0].message

    def test_dead_case_arms(self):
        result = analyze(FIG5)
        arms = result.by_code("dead-case-branch")
        assert len(arms) == 2

    def test_suffix_never_set(self):
        result = analyze(FIG5)
        assert result.has("undefined-variable")

    def test_same_deletion_bug_survives(self):
        result = analyze(FIG5)
        assert result.has("dangerous-deletion")

    def test_corrected_filter_is_live(self):
        result = analyze(FIG5_FIXED)
        assert not result.has("dead-stream")
        assert not result.has("dead-case-branch")


class TestSemanticVariants:
    """E5: robustness to semantically-equivalent rewrites (§3)."""

    VARIANTS = [
        # the paper's own variant
        'STEAMROOT="$(cd "${0%/*}" && echo $PWD)"\nc="/*"; rm -fr $STEAMROOT$c\n',
        # unquoted expansion
        'STEAMROOT="$(cd "${0%/*}" && echo $PWD)"\nrm -fr $STEAMROOT/*\n',
        # flags reordered and merged
        'STEAMROOT="$(cd "${0%/*}" && echo $PWD)"\nrm -rf "$STEAMROOT"/*\n',
        # split across two variables
        'STEAMROOT="$(cd "${0%/*}" && echo $PWD)"\na=$STEAMROOT\nrm -fr "$a"/*\n',
        # deletion via an intermediate assignment of the whole argument
        'STEAMROOT="$(cd "${0%/*}" && echo $PWD)"\nt="$STEAMROOT/"\nrm -fr $t*\n',
    ]

    @pytest.mark.parametrize("source", VARIANTS)
    def test_variant_flagged(self, source):
        assert analyze(source).has("dangerous-deletion")


class TestRmThenCat:
    """E6: the §4 always-fail composition."""

    SNIPPET = 'rm -fr "$1"\ncat "$1/config"\n'

    def test_always_fails(self):
        result = analyze(self.SNIPPET, n_args=1)
        fails = result.by_code("always-fails")
        assert fails and fails[0].always
        assert "cat" in fails[0].message

    def test_reversed_order_is_fine(self):
        result = analyze('cat "$1/config"\nrm -fr "$1"\n', n_args=1)
        assert not result.has("always-fails")

    def test_recreate_between_is_fine(self):
        source = 'rm -fr "$1"\nmkdir -p "$1"\ntouch "$1/config"\ncat "$1/config"\n'
        result = analyze(source, n_args=1)
        assert not result.has("always-fails")

    def test_double_mkdir_always_fails(self):
        result = analyze("mkdir /tmp/x\nmkdir /tmp/x\n")
        assert result.has("always-fails")

    def test_mkdir_p_twice_is_fine(self):
        result = analyze("mkdir -p /tmp/x\nmkdir -p /tmp/x\n")
        assert not result.has("always-fails")


class TestIdempotence:
    def test_mkdir_without_p(self):
        result = analyze("mkdir /opt/app")
        assert result.has("idempotence")

    def test_mkdir_with_p(self):
        result = analyze("mkdir -p /opt/app")
        assert not result.has("idempotence")

    def test_ln_without_f(self):
        result = analyze("ln -s /a /b")
        assert result.has("idempotence")


class TestPlatform:
    """E15: platform-dependence warnings (§5)."""

    def run_for(self, source, targets):
        checkers = default_checkers(platform_targets=targets)
        return Engine(checkers=checkers).run_script(source)

    def test_sed_i_not_portable_to_macos(self):
        result = self.run_for("sed -i s/a/b/ file.txt", ["macos"])
        assert result.has("platform-flag")

    def test_sed_i_fine_on_linux(self):
        result = self.run_for("sed -i s/a/b/ file.txt", ["linux"])
        assert not result.has("platform-flag")

    def test_readlink_f(self):
        result = self.run_for("readlink -f /x", ["macos"])
        assert result.has("platform-flag")

    def test_date_v_is_bsd_only(self):
        result = self.run_for("date -v +1d", ["linux"])
        assert result.has("platform-flag")

    def test_portable_script_clean(self):
        result = self.run_for("grep x f | sort | head -n 3", ["linux", "macos"])
        assert not result.has("platform-flag")
