"""Background jobs (`cmd &`) and the `wait` builtin."""

from repro.analysis.effects import RaceChecker
from repro.fs import FsOp
from repro.symex import Engine


def run(source, n_args=0, checkers=None):
    engine = Engine(checkers=checkers or [])
    return engine.run_script(source, n_args=n_args)


class TestBackgroundSemantics:
    def test_launch_status_is_zero(self):
        result = run("false &")
        assert {st.status for st in result.states} == {0}

    def test_env_isolation(self):
        # the job runs in a subshell: its assignments stay there
        result = run("x=1 &\necho done")
        for state in result.states:
            assert "x" not in state.env

    def test_child_exit_does_not_halt_parent(self):
        result = run("exit 1 &\nmkdir /srv/d\n")
        assert result.states
        for state in result.states:
            assert not state.halted
        # the parent kept executing: mkdir's create is on some trace
        # (its spec also forks a failure path with no create)
        assert any(
            e.op is FsOp.CREATE
            for state in result.states
            for e in state.fs.log
        )

    def test_cwd_isolation(self):
        result = run("cd /tmp &\nmkdir d\n")
        # `d` resolved against the original (symbolic) cwd, not /tmp
        creates = [
            e
            for state in result.states
            for e in state.fs.log
            if e.op is FsOp.CREATE
        ]
        assert creates and all("tmp" not in e.path for e in creates)

    def test_bg_jobs_tracked(self):
        result = run("cmd > f &\ncmd2 > g &\n")
        for state in result.states:
            assert [job.number for job in state.bg_jobs] == [1, 2]
            assert state.bg_launched == 2

    def test_effects_recorded_with_task(self):
        result = run("cmd > f &\n")
        state = result.states[0]
        writes = [e for e in state.fs.log if e.op in (FsOp.WRITE, FsOp.CREATE)]
        assert writes and all(e.task != 0 for e in writes)
        opens = [e for e in state.fs.log if e.op is FsOp.BG_OPEN]
        assert len(opens) == 1


class TestWaitBuiltin:
    def test_wait_joins_all(self):
        result = run("cmd > f &\ncmd2 > g &\nwait\n")
        for state in result.states:
            assert state.bg_jobs == ()
            assert state.status == 0
            closes = [e for e in state.fs.log if e.op is FsOp.BG_CLOSE]
            assert len(closes) == 2

    def test_wait_percent_selective(self):
        result = run("cmd > f &\ncmd2 > g &\nwait %1\n")
        for state in result.states:
            assert [job.number for job in state.bg_jobs] == [2]
            closes = [e for e in state.fs.log if e.op is FsOp.BG_CLOSE]
            assert len(closes) == 1

    def test_wait_percent_status_unknown(self):
        result = run("cmd > f &\nwait %1\n")
        assert {st.status for st in result.states} == {None}

    def test_wait_with_no_jobs_is_noop(self):
        result = run("wait\n")
        assert {st.status for st in result.states} == {0}

    def test_regression_sequence_background_wait(self):
        # a & b; wait; c — explores cleanly, joins the job, and runs c
        result = run("a &\nb\nwait\nc\n", checkers=[RaceChecker()])
        assert result.states
        for state in result.states:
            assert state.bg_jobs == ()
        assert not [
            d for d in result.diagnostics if d.code.startswith("race-")
        ]


class TestPruneInteraction:
    def test_states_with_different_live_jobs_do_not_merge(self):
        # the branch launches a job only on one arm; merging the two
        # states would lose the job's liveness
        source = 'if probe; then cmd > f & fi\ngrep x f\n'
        result = run(source, checkers=[RaceChecker()])
        live = {tuple(j.number for j in st.bg_jobs) for st in result.states}
        assert () in live and (1,) in live
