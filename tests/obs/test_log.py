"""The structured JSONL ops logger: record shape, levels, rotation
behavior, and the never-fatal guarantee."""

import json
import os
import threading

import pytest

from repro.obs import NullOpsLogger, OpsLogger


class FixedClock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        self.now += 1.0
        return self.now


def read_events(path):
    with open(path, "r", encoding="utf-8") as handle:
        return [json.loads(line) for line in handle]


class TestEmit:
    def test_one_json_object_per_line(self, tmp_path):
        log = OpsLogger(str(tmp_path / "ops.jsonl"), clock=FixedClock())
        log.info("request.accept", request_id="a-1", op="analyze")
        log.info("request.done", request_id="a-1", op="analyze", elapsed_ms=1.5)
        events = read_events(log.path)
        assert [e["event"] for e in events] == ["request.accept", "request.done"]
        assert events[0]["request_id"] == "a-1"
        assert events[1]["elapsed_ms"] == 1.5
        assert all("ts" in e and "level" in e for e in events)

    def test_timestamps_come_from_the_clock(self, tmp_path):
        log = OpsLogger(str(tmp_path / "ops.jsonl"), clock=FixedClock(50.0))
        log.info("a")
        log.info("b")
        events = read_events(log.path)
        assert events[0]["ts"] == 51.0
        assert events[1]["ts"] == 52.0

    def test_emit_returns_the_record(self, tmp_path):
        log = OpsLogger(str(tmp_path / "ops.jsonl"))
        record = log.warning("request.slow", elapsed_ms=1200.0)
        assert record["event"] == "request.slow"
        assert record["level"] == "warning"

    def test_non_serializable_fields_are_stringified(self, tmp_path):
        log = OpsLogger(str(tmp_path / "ops.jsonl"))
        log.error("request.error", error=ValueError("boom"))
        [event] = read_events(log.path)
        assert "boom" in event["error"]


class TestLevels:
    def test_below_threshold_dropped(self, tmp_path):
        log = OpsLogger(str(tmp_path / "ops.jsonl"), level="warning")
        assert log.debug("noise") is None
        assert log.info("request.accept") is None
        assert log.warning("request.shed") is not None
        assert log.error("request.error") is not None
        events = read_events(log.path)
        assert [e["level"] for e in events] == ["warning", "error"]

    def test_unknown_level_rejected_at_construction(self, tmp_path):
        with pytest.raises(ValueError):
            OpsLogger(str(tmp_path / "ops.jsonl"), level="loud")


class TestRotationSafety:
    def test_append_survives_file_rotation(self, tmp_path):
        """Rename-and-recreate rotation: events after the rename land in
        the new file without any signal to the logger."""
        path = tmp_path / "ops.jsonl"
        log = OpsLogger(str(path))
        log.info("before")
        os.rename(str(path), str(tmp_path / "ops.jsonl.1"))
        log.info("after")
        assert [e["event"] for e in read_events(str(path))] == ["after"]
        assert [e["event"] for e in read_events(str(tmp_path / "ops.jsonl.1"))] == [
            "before"
        ]

    def test_unwritable_path_never_raises(self, tmp_path):
        log = OpsLogger(str(tmp_path / "no-such-dir" / "ops.jsonl"))
        assert log.info("request.accept") is not None  # record built, write dropped

    def test_concurrent_writers_produce_whole_lines(self, tmp_path):
        log = OpsLogger(str(tmp_path / "ops.jsonl"))

        def hammer(worker):
            for i in range(50):
                log.info("tick", worker=worker, i=i)

        threads = [threading.Thread(target=hammer, args=(w,)) for w in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        events = read_events(log.path)  # every line must parse
        assert len(events) == 200


class TestNullLogger:
    def test_drops_everything(self, tmp_path):
        log = NullOpsLogger()
        assert not log.enabled
        assert log.info("request.accept") is None
        assert log.error("request.error") is None
