"""Unit tests for the telemetry recorders: span nesting, counter and
histogram aggregation, recorder scoping, and the no-op default."""

import threading

import pytest

from repro.obs import (
    NullRecorder,
    TraceRecorder,
    get_recorder,
    set_recorder,
    traced,
    use_recorder,
)


class FakeClock:
    """Deterministic monotonic clock: advances 1000ns per reading."""

    def __init__(self):
        self.now = 0

    def __call__(self):
        self.now += 1000
        return self.now


def make_recorder():
    return TraceRecorder(clock=FakeClock())


class TestNullRecorder:
    def test_default_recorder_is_noop(self):
        recorder = get_recorder()
        assert recorder.enabled is False

    def test_all_operations_are_inert(self):
        recorder = NullRecorder()
        recorder.count("x")
        recorder.observe("y", 3.0)
        with recorder.span("z") as span:
            pass
        assert recorder.counter("x") == 0
        assert recorder.snapshot().counters == {}

    def test_span_handle_is_shared_singleton(self):
        recorder = NullRecorder()
        assert recorder.span("a") is recorder.span("b")


class TestSpans:
    def test_nesting_builds_a_tree(self):
        recorder = make_recorder()
        with recorder.span("outer"):
            with recorder.span("inner-1"):
                pass
            with recorder.span("inner-2"):
                with recorder.span("leaf"):
                    pass
        [outer] = recorder.roots
        assert outer.name == "outer"
        assert [c.name for c in outer.children] == ["inner-1", "inner-2"]
        assert [c.name for c in outer.children[1].children] == ["leaf"]

    def test_sibling_roots(self):
        recorder = make_recorder()
        with recorder.span("a"):
            pass
        with recorder.span("b"):
            pass
        assert [r.name for r in recorder.roots] == ["a", "b"]

    def test_durations_are_monotonic_and_nested(self):
        recorder = make_recorder()
        with recorder.span("outer"):
            with recorder.span("inner"):
                pass
        [outer] = recorder.roots
        [inner] = outer.children
        assert outer.duration_ns > inner.duration_ns > 0
        assert outer.start_ns <= inner.start_ns
        assert inner.end_ns <= outer.end_ns

    def test_span_attrs_recorded(self):
        recorder = make_recorder()
        with recorder.span("op", node="If") as record:
            pass
        assert record.attrs == {"node": "If"}

    def test_exception_still_closes_span(self):
        recorder = make_recorder()
        with pytest.raises(RuntimeError):
            with recorder.span("failing"):
                raise RuntimeError("boom")
        [record] = recorder.roots
        assert record.end_ns is not None

    def test_iter_spans_depth_first(self):
        recorder = make_recorder()
        with recorder.span("a"):
            with recorder.span("b"):
                pass
            with recorder.span("c"):
                pass
        assert [s.name for s in recorder.iter_spans()] == ["a", "b", "c"]
        assert recorder.span_count == 3


class TestMetrics:
    def test_counters_aggregate(self):
        recorder = make_recorder()
        recorder.count("symex.states_explored")
        recorder.count("symex.states_explored")
        recorder.count("symex.states_explored", 3)
        assert recorder.counter("symex.states_explored") == 5
        assert recorder.counter("missing") == 0

    def test_histograms_track_summary_stats(self):
        recorder = make_recorder()
        for value in (4, 2, 9):
            recorder.observe("rlang.dfa_states", value)
        histogram = recorder.histogram("rlang.dfa_states")
        assert histogram.count == 3
        assert histogram.minimum == 2
        assert histogram.maximum == 9
        assert histogram.mean == pytest.approx(5.0)

    def test_snapshot_is_a_copy(self):
        recorder = make_recorder()
        recorder.count("a")
        recorder.observe("h", 1)
        snap = recorder.snapshot()
        recorder.count("a")
        recorder.observe("h", 2)
        assert snap.counter("a") == 1
        assert snap.histograms["h"].count == 1

    def test_snapshot_merge(self):
        recorder = make_recorder()
        recorder.count("a", 2)
        recorder.observe("h", 5)
        one = recorder.snapshot()
        two = recorder.snapshot()
        one.merge(two)
        assert one.counter("a") == 4
        assert one.histograms["h"].count == 2


class TestScoping:
    def test_use_recorder_restores_previous(self):
        outer = get_recorder()
        recorder = make_recorder()
        with use_recorder(recorder):
            assert get_recorder() is recorder
        assert get_recorder() is outer

    def test_use_recorder_restores_on_exception(self):
        outer = get_recorder()
        with pytest.raises(ValueError):
            with use_recorder(make_recorder()):
                raise ValueError()
        assert get_recorder() is outer

    def test_set_recorder_none_restores_noop(self):
        previous = set_recorder(None)
        try:
            assert get_recorder().enabled is False
        finally:
            set_recorder(previous)


class TestTracedDecorator:
    def test_records_span_when_enabled(self):
        recorder = make_recorder()

        @traced("phase.demo")
        def work():
            return 42

        with use_recorder(recorder):
            assert work() == 42
        assert [s.name for s in recorder.roots] == ["phase.demo"]

    def test_bare_decorator_uses_qualname(self):
        recorder = make_recorder()

        @traced
        def plain():
            return "ok"

        with use_recorder(recorder):
            assert plain() == "ok"
        assert "plain" in recorder.roots[0].name

    def test_noop_without_active_recorder(self):
        @traced("never")
        def work():
            return 1

        assert work() == 1  # no recorder installed: no error, no records


class TestThreadSafety:
    def test_spans_nest_per_thread(self):
        recorder = make_recorder()
        done = threading.Event()

        def worker():
            with recorder.span("thread-root"):
                done.set()

        with recorder.span("main-root"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        names = sorted(r.name for r in recorder.roots)
        assert names == ["main-root", "thread-root"]
        assert done.is_set()
