"""Exporter tests: Chrome trace-event schema, tree rendering, and the
stats summary table."""

import json

from repro.obs import TraceRecorder
from repro.obs.export import (
    chrome_trace,
    render_stats,
    render_tree,
    span_aggregates,
    write_chrome_trace,
)

from .test_recorder import FakeClock


def sample_recorder():
    recorder = TraceRecorder(clock=FakeClock())
    with recorder.span("analyze"):
        with recorder.span("analyze.parse"):
            pass
        with recorder.span("analyze.symex", script="demo.sh"):
            with recorder.span("eval.SimpleCommand"):
                pass
            with recorder.span("eval.SimpleCommand"):
                pass
    recorder.count("symex.states_explored", 12)
    recorder.count("symex.truncations", 1)
    recorder.observe("rlang.dfa_states", 7)
    return recorder


class TestChromeTrace:
    def test_document_schema(self):
        doc = chrome_trace(sample_recorder())
        assert isinstance(doc["traceEvents"], list)
        assert doc["traceEvents"], "no events exported"
        for event in doc["traceEvents"]:
            assert event["ph"] in ("X", "C")
            assert isinstance(event["name"], str)
            assert isinstance(event["ts"], (int, float))
            assert "pid" in event
            if event["ph"] == "X":
                assert event["dur"] >= 0
                assert "tid" in event

    def test_span_and_counter_events_present(self):
        doc = chrome_trace(sample_recorder())
        names = {e["name"] for e in doc["traceEvents"]}
        assert {"analyze", "analyze.parse", "eval.SimpleCommand"} <= names
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        by_name = {e["name"]: e["args"]["value"] for e in counters}
        assert by_name["symex.states_explored"] == 12
        assert by_name["symex.truncations"] == 1

    def test_timestamps_relative_to_origin(self):
        doc = chrome_trace(sample_recorder())
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert all(e["ts"] >= 0 for e in complete)

    def test_args_carry_span_attrs(self):
        doc = chrome_trace(sample_recorder())
        [symex] = [e for e in doc["traceEvents"] if e["name"] == "analyze.symex"]
        assert symex["args"] == {"script": "demo.sh"}

    def test_document_is_json_serialisable(self, tmp_path):
        recorder = sample_recorder()
        path = tmp_path / "trace.json"
        write_chrome_trace(recorder, str(path))
        loaded = json.loads(path.read_text())
        assert loaded["traceEvents"]
        assert loaded == chrome_trace(recorder)


class TestRenderTree:
    def test_nesting_shown(self):
        text = render_tree(sample_recorder())
        lines = text.splitlines()
        assert lines[0].startswith("analyze")
        parse_line = next(l for l in lines if "analyze.parse" in l)
        assert "─" in parse_line  # rendered as a child, not a root
        assert text.index("analyze.parse") < text.index("eval.SimpleCommand")

    def test_max_depth_caps_output(self):
        text = render_tree(sample_recorder(), max_depth=1)
        assert "eval.SimpleCommand" not in text
        assert "child span(s)" in text


class TestStats:
    def test_span_aggregates_group_by_name(self):
        totals = span_aggregates(sample_recorder())
        count, total_ns = totals["eval.SimpleCommand"]
        assert count == 2
        assert total_ns > 0

    def test_render_stats_sections(self):
        text = render_stats(sample_recorder())
        assert "counters" in text
        assert "histograms" in text
        assert "spans (wall time)" in text
        assert "symex.states_explored" in text
        assert "12" in text
        assert "rlang.dfa_states" in text

    def test_empty_recorder(self):
        recorder = TraceRecorder(clock=FakeClock())
        assert render_stats(recorder) == "(no telemetry recorded)"
