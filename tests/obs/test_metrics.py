"""Histogram reservoir/percentiles, snapshot round-trips, and the
Prometheus text exposition."""

import json

from repro.obs import Histogram, MetricsSnapshot, TraceRecorder
from repro.obs.export import prometheus_text
from repro.obs.metrics import RESERVOIR_SIZE


class TestHistogramPercentiles:
    def test_percentile_exact_when_under_reservoir(self):
        histogram = Histogram()
        for value in range(1, 101):  # 1..100
            histogram.add(float(value))
        assert histogram.percentile(0) == 1.0
        assert histogram.percentile(100) == 100.0
        assert abs(histogram.percentile(50) - 50.5) < 1.0
        assert abs(histogram.percentile(95) - 95.0) < 1.5
        assert abs(histogram.percentile(99) - 99.0) < 1.5

    def test_percentile_empty_is_none(self):
        assert Histogram().percentile(50) is None

    def test_single_sample(self):
        histogram = Histogram()
        histogram.add(7.0)
        assert histogram.percentile(50) == 7.0
        assert histogram.percentile(99) == 7.0

    def test_reservoir_is_bounded(self):
        histogram = Histogram()
        for value in range(10 * RESERVOIR_SIZE):
            histogram.add(float(value))
        assert len(histogram.samples) == RESERVOIR_SIZE
        assert histogram.count == 10 * RESERVOIR_SIZE
        # summary stats stay exact even after the reservoir saturates
        assert histogram.minimum == 0.0
        assert histogram.maximum == 10 * RESERVOIR_SIZE - 1
        # the quantile estimate still tracks the true distribution
        p50 = histogram.percentile(50)
        assert 0.3 * 10 * RESERVOIR_SIZE < p50 < 0.7 * 10 * RESERVOIR_SIZE

    def test_reservoir_is_deterministic(self):
        one, two = Histogram(), Histogram()
        for value in range(5 * RESERVOIR_SIZE):
            one.add(float(value))
            two.add(float(value))
        assert one.samples == two.samples

    def test_describe_includes_quantiles(self):
        histogram = Histogram()
        for value in range(100):
            histogram.add(float(value))
        text = histogram.describe()
        assert "p50=" in text and "p95=" in text and "p99=" in text
        assert "n=100" in text

    def test_describe_empty(self):
        assert Histogram().describe() == "n=0"


class TestHistogramMerge:
    def test_merge_preserves_samples(self):
        left, right = Histogram(), Histogram()
        for value in (1.0, 2.0, 3.0):
            left.add(value)
        for value in (10.0, 20.0):
            right.add(value)
        left.merge(right)
        assert left.count == 5
        assert sorted(left.samples) == [1.0, 2.0, 3.0, 10.0, 20.0]
        assert left.percentile(100) == 20.0

    def test_merge_respects_reservoir_cap(self):
        left, right = Histogram(), Histogram()
        for value in range(RESERVOIR_SIZE):
            left.add(float(value))
            right.add(float(value + RESERVOIR_SIZE))
        left.merge(right)
        assert len(left.samples) == RESERVOIR_SIZE
        assert left.count == 2 * RESERVOIR_SIZE
        # the subsample keeps a cross-section of both sides
        assert any(s < RESERVOIR_SIZE for s in left.samples)
        assert any(s >= RESERVOIR_SIZE for s in left.samples)

    def test_merge_into_empty(self):
        left, right = Histogram(), Histogram()
        right.add(4.0)
        left.merge(right)
        assert left.count == 1
        assert left.samples == [4.0]
        assert left.minimum == left.maximum == 4.0


class TestSnapshotRoundTrip:
    def _snapshot(self):
        recorder = TraceRecorder()
        recorder.count("server.requests", 3)
        recorder.count("batch.cache.hit", 2)
        for value in (1.0, 2.0, 3.0, 10.0):
            recorder.observe("server.request_ms.analyze", value)
        return recorder.snapshot()

    def test_to_dict_from_dict_round_trip(self):
        snapshot = self._snapshot()
        clone = MetricsSnapshot.from_dict(snapshot.to_dict())
        assert clone.counters == snapshot.counters
        for name, histogram in snapshot.histograms.items():
            other = clone.histograms[name]
            assert other.count == histogram.count
            assert other.total == histogram.total
            assert other.minimum == histogram.minimum
            assert other.maximum == histogram.maximum
            assert other.samples == histogram.samples
            assert other.percentile(95) == histogram.percentile(95)

    def test_round_trip_survives_json(self):
        snapshot = self._snapshot()
        wire = json.loads(json.dumps(snapshot.to_dict()))
        clone = MetricsSnapshot.from_dict(wire)
        assert clone.counters == snapshot.counters
        assert clone.histogram("server.request_ms.analyze").samples == [
            1.0,
            2.0,
            3.0,
            10.0,
        ]

    def test_from_dict_tolerates_missing_samples(self):
        # wire data from an older producer has no 'samples' key
        clone = MetricsSnapshot.from_dict(
            {"histograms": {"x": {"count": 5, "total": 10.0, "min": 1, "max": 3}}}
        )
        assert clone.histogram("x").count == 5
        assert clone.histogram("x").samples == []
        assert clone.histogram("x").percentile(50) is None

    def test_cross_process_style_merge(self):
        """Worker snapshots arrive as dicts and fold into a parent
        recorder exactly once each (the pool-boundary path)."""
        parent = TraceRecorder()
        parent.count("batch.files", 2)
        for worker_id in (1, 2):
            worker = TraceRecorder()
            worker.count("symex.states_explored", 10 * worker_id)
            worker.observe("batch.file_seconds", float(worker_id))
            wire = json.loads(json.dumps(worker.snapshot().to_dict()))
            parent.absorb(MetricsSnapshot.from_dict(wire))
        assert parent.counter("batch.files") == 2
        assert parent.counter("symex.states_explored") == 30
        merged = parent.histogram("batch.file_seconds")
        assert merged.count == 2
        assert sorted(merged.samples) == [1.0, 2.0]


class TestAbsorb:
    def test_null_recorder_absorb_is_noop(self):
        from repro.obs import NullRecorder

        recorder = NullRecorder()
        recorder.absorb(MetricsSnapshot(counters={"x": 5}))
        assert recorder.counter("x") == 0

    def test_absorb_accumulates(self):
        totals = TraceRecorder()
        for _ in range(3):
            request = TraceRecorder()
            request.count("server.requests")
            request.observe("server.request_ms", 2.0)
            totals.absorb(request.snapshot())
        assert totals.counter("server.requests") == 3
        assert totals.histogram("server.request_ms").count == 3


class TestPrometheusText:
    def test_counters_and_summaries(self):
        snapshot = MetricsSnapshot(counters={"server.requests": 7})
        histogram = Histogram()
        for value in (1.0, 2.0, 3.0):
            histogram.add(value)
        snapshot.histograms["server.request_ms"] = histogram
        text = prometheus_text(snapshot, gauges={"server.uptime_seconds": 12.5})
        assert "# TYPE repro_server_requests_total counter" in text
        assert "repro_server_requests_total 7" in text
        assert "# TYPE repro_server_request_ms summary" in text
        assert 'repro_server_request_ms{quantile="0.5"} 2.0' in text
        assert "repro_server_request_ms_sum 6.0" in text
        assert "repro_server_request_ms_count 3" in text
        assert "# TYPE repro_server_uptime_seconds gauge" in text
        assert text.endswith("\n")

    def test_every_line_parses(self):
        """Each non-comment line must be `name{labels}? value` with a
        float-parseable value — the exposition-format contract."""
        snapshot = MetricsSnapshot(counters={"a.b-c/d": 1, "9leading": 2})
        histogram = Histogram()
        histogram.add(1.5)
        snapshot.histograms["batch.file_seconds"] = histogram
        text = prometheus_text(snapshot, gauges={"g": None})
        for line in text.strip().splitlines():
            if line.startswith("#"):
                parts = line.split()
                assert parts[:2] == ["#", "TYPE"] and len(parts) == 4
                continue
            name_part, value_part = line.rsplit(" ", 1)
            metric = name_part.split("{", 1)[0]
            assert metric.replace("_", "a").isalnum(), metric
            assert not metric[0].isdigit()
            float(value_part)  # NaN included — must not raise

    def test_empty_snapshot(self):
        assert prometheus_text(MetricsSnapshot()) == "\n"
