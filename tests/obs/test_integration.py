"""Telemetry threaded through the real pipeline: the analyzer fills the
expected counters and spans, truncation is surfaced instead of silent,
and `repro-analyze --stats` reports them end-to-end."""

import importlib.util
import json
import re
from pathlib import Path

import pytest

from repro import cli
from repro.analysis import analyze
from repro.obs import TraceRecorder, use_recorder
from repro.symex import Engine

REPO_ROOT = Path(__file__).resolve().parents[2]


def quickstart_script() -> str:
    """The shell script embedded in examples/quickstart.py."""
    spec = importlib.util.spec_from_file_location(
        "quickstart", REPO_ROOT / "examples" / "quickstart.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.SCRIPT


#: forks an unmergeable state pair per guard: 2^4 = 16 distinct worlds
BRANCHY = "\n".join(
    f"if probe{i}; then V{i}=a; else V{i}=b; fi" for i in range(4)
)


class TestAnalyzerTelemetry:
    def test_quickstart_counters(self):
        recorder = TraceRecorder()
        with use_recorder(recorder):
            report = analyze(quickstart_script())
        assert report.has("dangerous-deletion")
        assert recorder.counter("symex.states_explored") > 0
        assert recorder.counter("specs.lookup_hits") > 0
        assert recorder.counter("rlang.determinise_calls") > 0

    def test_phase_spans_recorded(self):
        recorder = TraceRecorder()
        with use_recorder(recorder):
            analyze("echo hello\n", include_lint=True)
        names = {span.name for span in recorder.iter_spans()}
        assert {"analyze.parse", "analyze.symex", "symex.run", "lint.run"} <= names

    def test_eval_spans_nest_under_symex_run(self):
        recorder = TraceRecorder()
        with use_recorder(recorder):
            analyze("mkdir /tmp/x\n")
        [symex] = [s for s in recorder.iter_spans() if s.name == "analyze.symex"]
        flat = []
        stack = list(symex.children)
        while stack:
            record = stack.pop()
            flat.append(record.name)
            stack.extend(record.children)
        assert any(name.startswith("eval.") for name in flat)

    def test_monitor_stats_fold_into_metrics(self):
        from repro.monitor import StreamMonitor
        from repro.rtypes import StreamType

        recorder = TraceRecorder()
        with use_recorder(recorder):
            monitor = StreamMonitor(StreamType.of("[a-z]+"), on_violation="count")
            list(monitor.filter(["good", "BAD!", "fine"]))
        assert recorder.counter("monitor.lines_checked") == 3
        assert recorder.counter("monitor.violations") == 1
        assert monitor.stats.as_metrics() == {
            "monitor.lines_checked": 3,
            "monitor.violations": 1,
        }


class TestTruncationSurfaced:
    def test_engine_counts_truncations_and_warns(self):
        recorder = TraceRecorder()
        engine = Engine(max_fork=4, recorder=recorder)
        result = engine.run_script(BRANCHY)
        assert result.truncations > 0
        assert recorder.counter("symex.truncations") == result.truncations
        [diag] = [d for d in result.diagnostics if d.code == "analysis-truncated"]
        assert "incomplete" in diag.message
        assert diag.severity.value == "info"

    def test_no_truncation_no_diagnostic(self):
        result = Engine(max_fork=64).run_script(BRANCHY)
        assert result.truncations == 0
        assert not any(d.code == "analysis-truncated" for d in result.diagnostics)

    def test_report_carries_truncations(self):
        report = analyze(BRANCHY, max_fork=4)
        assert report.truncations > 0
        assert report.has("analysis-truncated")
        assert "[truncated" in report.render()


class TestCliStatsGolden:
    def test_analyze_stats_reports_states_explored(self, tmp_path, capsys):
        """Golden check: --stats on the quickstart script shows a nonzero
        symex.states_explored counter."""
        script = tmp_path / "quickstart.sh"
        script.write_text(quickstart_script())
        code = cli.main_analyze([str(script), "--stats"])
        captured = capsys.readouterr()
        assert code == 1  # the Steam updater core is unsafe
        match = re.search(
            r"symex\.states_explored\s\.+\s(\d+)", captured.err
        )
        assert match, captured.err
        assert int(match.group(1)) > 0
        assert "spans (wall time)" in captured.err
        assert "analyze.symex" in captured.err

    def test_analyze_trace_writes_chrome_json(self, tmp_path, capsys):
        script = tmp_path / "s.sh"
        script.write_text("echo hello\n")
        trace = tmp_path / "trace.json"
        code = cli.main_analyze([str(script), "--trace", str(trace)])
        capsys.readouterr()
        assert code == 0
        doc = json.loads(trace.read_text())
        assert doc["traceEvents"]
        assert all("ph" in event for event in doc["traceEvents"])
        names = {e["name"] for e in doc["traceEvents"]}
        assert "repro-analyze" in names
        assert "symex.states_explored" in names

    def test_without_flags_no_stats_output(self, tmp_path, capsys):
        script = tmp_path / "s.sh"
        script.write_text("echo hello\n")
        cli.main_analyze([str(script)])
        captured = capsys.readouterr()
        assert "counters" not in captured.err

    def test_lint_stats(self, tmp_path, capsys):
        script = tmp_path / "s.sh"
        script.write_text("rm $X\n")
        cli.main_lint([str(script), "--stats"])
        captured = capsys.readouterr()
        assert "lint.rules_run" in captured.err
