"""Unit tests for the shell lexer."""

import pytest

from repro.shell.lexer import ShellSyntaxError, tokenize
from repro.shell.tokens import TokenKind


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source) if t.kind is not TokenKind.EOF]


class TestBasics:
    def test_empty(self):
        toks = tokenize("")
        assert len(toks) == 1 and toks[0].kind is TokenKind.EOF

    def test_simple_words(self):
        assert texts("echo hello world") == ["echo", "hello", "world"]

    def test_blanks_collapse(self):
        assert texts("a   \t  b") == ["a", "b"]

    def test_newline_token(self):
        toks = tokenize("a\nb")
        assert [t.kind for t in toks] == [
            TokenKind.WORD,
            TokenKind.NEWLINE,
            TokenKind.WORD,
            TokenKind.EOF,
        ]

    def test_comment_skipped(self):
        assert texts("echo hi # a comment") == ["echo", "hi"]

    def test_comment_whole_line(self):
        assert texts("# only a comment\necho x") == ["\n", "echo", "x"]

    def test_hash_inside_word_is_literal(self):
        assert texts("echo a#b") == ["echo", "a#b"]

    def test_line_continuation_between_words(self):
        assert texts("echo a \\\n b") == ["echo", "a", "b"]

    def test_line_continuation_in_word(self):
        # The raw token keeps the continuation; word parsing removes it.
        from repro.shell import parse

        cmd = parse("echo a\\\nb")
        assert cmd.words[1].literal_text() == "ab"

    def test_positions(self):
        toks = tokenize("echo hi\nls")
        assert (toks[0].pos.line, toks[0].pos.col) == (1, 1)
        assert (toks[1].pos.line, toks[1].pos.col) == (1, 6)
        assert (toks[3].pos.line, toks[3].pos.col) == (2, 1)


class TestOperators:
    @pytest.mark.parametrize(
        "source,expected",
        [
            ("a|b", ["a", "|", "b"]),
            ("a||b", ["a", "||", "b"]),
            ("a&&b", ["a", "&&", "b"]),
            ("a&b", ["a", "&", "b"]),
            ("a;b", ["a", ";", "b"]),
            ("a;;b", ["a", ";;", "b"]),
            ("a>b", ["a", ">", "b"]),
            ("a>>b", ["a", ">>", "b"]),
            ("a<b", ["a", "<", "b"]),
            ("a>&2", ["a", ">&", "2"]),
            ("a<&0", ["a", "<&", "0"]),
            ("a>|b", ["a", ">|", "b"]),
            ("a<>b", ["a", "<>", "b"]),
            ("(a)", ["(", "a", ")"]),
        ],
    )
    def test_operator_split(self, source, expected):
        assert texts(source) == expected

    def test_io_number(self):
        toks = tokenize("cmd 2>err")
        assert toks[1].kind is TokenKind.IO_NUMBER
        assert toks[1].text == "2"
        assert toks[2].text == ">"

    def test_digits_not_followed_by_redirect_are_word(self):
        toks = tokenize("echo 2 x")
        assert toks[1].kind is TokenKind.WORD


class TestQuoting:
    def test_single_quotes_keep_metachars(self):
        assert texts("echo 'a|b;c'") == ["echo", "'a|b;c'"]

    def test_double_quotes_keep_metachars(self):
        assert texts('echo "a && b"') == ["echo", '"a && b"']

    def test_backslash_escapes_space(self):
        assert texts("echo a\\ b") == ["echo", "a\\ b"]

    def test_unterminated_single_quote(self):
        with pytest.raises(ShellSyntaxError):
            tokenize("echo 'oops")

    def test_unterminated_double_quote(self):
        with pytest.raises(ShellSyntaxError):
            tokenize('echo "oops')

    def test_dollar_paren_spans_word(self):
        assert texts('X="$(cd "${0%/*}" && echo $PWD)"') == [
            'X="$(cd "${0%/*}" && echo $PWD)"'
        ]

    def test_nested_command_sub(self):
        src = "echo $(echo $(echo hi))"
        assert texts(src) == ["echo", "$(echo $(echo hi))"]

    def test_command_sub_with_comment(self):
        assert texts("echo $(ls # c\n)") == ["echo", "$(ls # c\n)"]

    def test_braced_param_with_close_brace_in_quotes(self):
        assert texts("echo ${X:-'}'}") == ["echo", "${X:-'}'}"]

    def test_backquote(self):
        assert texts("echo `ls -l`") == ["echo", "`ls -l`"]

    def test_arith(self):
        assert texts("echo $((1+2))x") == ["echo", "$((1+2))x"]

    def test_unterminated_command_sub(self):
        with pytest.raises(ShellSyntaxError):
            tokenize("echo $(ls")


class TestHeredoc:
    def test_basic_heredoc(self):
        toks = tokenize("cat <<EOF\nhello\nworld\nEOF\n")
        ops = [t for t in toks if t.is_op("<<")]
        assert len(ops) == 1
        assert ops[0].heredoc_body == "hello\nworld\n"
        assert not ops[0].heredoc_quoted

    def test_quoted_delimiter(self):
        toks = tokenize("cat <<'EOF'\n$HOME\nEOF\n")
        op = next(t for t in toks if t.is_op("<<"))
        assert op.heredoc_quoted
        assert op.heredoc_body == "$HOME\n"

    def test_dash_strips_tabs(self):
        toks = tokenize("cat <<-EOF\n\thello\n\tEOF\n")
        op = next(t for t in toks if t.is_op("<<-"))
        assert op.heredoc_body == "hello\n"

    def test_missing_delimiter(self):
        with pytest.raises(ShellSyntaxError):
            tokenize("cat <<EOF\nhello\n")

    def test_two_heredocs_one_line(self):
        toks = tokenize("cat <<A <<B\na\nA\nb\nB\n")
        ops = [t for t in toks if t.is_op("<<")]
        assert ops[0].heredoc_body == "a\n"
        assert ops[1].heredoc_body == "b\n"
