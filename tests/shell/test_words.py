"""Unit tests for structured word parsing."""

import pytest

from repro.shell import parse as parse_command
from repro.shell.ast import (
    ArithPart,
    CmdSubPart,
    GlobPart,
    LiteralPart,
    ParamPart,
    SimpleCommand,
    TildePart,
)
from repro.shell.tokens import Position
from repro.shell.words import parse_word


def word(raw):
    return parse_word(raw, parse_command, Position())


class TestLiterals:
    def test_plain(self):
        w = word("hello")
        assert [type(p) for p in w.parts] == [LiteralPart]
        assert w.parts[0].text == "hello"
        assert not w.parts[0].quoted
        assert w.literal_text() == "hello"

    def test_single_quoted(self):
        w = word("'a b'")
        assert w.parts[0].text == "a b"
        assert w.parts[0].quoted
        assert w.is_fully_quoted()

    def test_double_quoted(self):
        w = word('"a b"')
        assert w.parts[0].text == "a b"
        assert w.parts[0].quoted

    def test_mixed_quoting_splits_parts(self):
        w = word("a'b'c")
        assert [p.text for p in w.parts] == ["a", "b", "c"]
        assert [p.quoted for p in w.parts] == [False, True, False]

    def test_backslash_escape(self):
        w = word("a\\ b")
        texts = [(p.text, p.quoted) for p in w.parts]
        assert texts == [("a", False), (" ", True), ("b", False)]

    def test_empty_quoted_string(self):
        w = word("''")
        assert len(w.parts) == 1
        assert w.parts[0].text == ""
        assert w.parts[0].quoted

    def test_dollar_alone_is_literal(self):
        w = word("a$")
        assert w.literal_text() == "a$"


class TestParams:
    def test_simple_var(self):
        w = word("$FOO")
        assert isinstance(w.parts[0], ParamPart)
        assert w.parts[0].name == "FOO"
        assert w.parts[0].op is None
        assert not w.parts[0].quoted

    def test_braced(self):
        w = word("${FOO}")
        assert w.parts[0].name == "FOO"

    def test_positional(self):
        assert word("$0").parts[0].name == "0"
        assert word("$1").parts[0].name == "1"
        assert word("${10}").parts[0].name == "10"

    def test_special(self):
        for ch in "@*#?$!":
            assert word(f"${ch}").parts[0].name == ch

    def test_quoted_param(self):
        w = word('"$FOO"')
        assert isinstance(w.parts[0], ParamPart)
        assert w.parts[0].quoted

    def test_suffix_strip(self):
        # The Fig. 1 expansion: "${0%/*}"
        w = word('"${0%/*}"')
        part = w.parts[0]
        assert isinstance(part, ParamPart)
        assert part.name == "0"
        assert part.op == "%"
        assert part.arg.raw == "/*"
        assert part.quoted

    @pytest.mark.parametrize(
        "raw,op",
        [
            ("${X:-d}", ":-"),
            ("${X-d}", "-"),
            ("${X:=d}", ":="),
            ("${X=d}", "="),
            ("${X:?msg}", ":?"),
            ("${X?msg}", "?"),
            ("${X:+d}", ":+"),
            ("${X+d}", "+"),
            ("${X%suf}", "%"),
            ("${X%%suf}", "%%"),
            ("${X#pre}", "#"),
            ("${X##pre}", "##"),
        ],
    )
    def test_operators(self, raw, op):
        part = word(raw).parts[0]
        assert part.op == op
        assert part.name == "X"

    def test_length(self):
        part = word("${#X}").parts[0]
        assert part.op == "len"
        assert part.name == "X"

    def test_default_word_is_parsed(self):
        part = word("${X:-$Y}").parts[0]
        inner = part.arg.parts[0]
        assert isinstance(inner, ParamPart)
        assert inner.name == "Y"

    def test_var_followed_by_text(self):
        w = word("$FOO/bar")
        assert isinstance(w.parts[0], ParamPart)
        assert w.parts[1].text == "/bar"

    def test_adjacent_vars(self):
        # §3's semantic-variant example: rm -fr $STEAMROOT$c
        w = word("$STEAMROOT$c")
        assert [p.name for p in w.parts] == ["STEAMROOT", "c"]

    def test_literal_text_none_with_expansion(self):
        assert word("$X").literal_text() is None


class TestCommandSub:
    def test_simple(self):
        w = word("$(echo hi)")
        part = w.parts[0]
        assert isinstance(part, CmdSubPart)
        assert part.source == "echo hi"
        assert isinstance(part.command, SimpleCommand)
        assert part.command.name == "echo"

    def test_backquote(self):
        part = word("`echo hi`").parts[0]
        assert isinstance(part, CmdSubPart)
        assert part.command.name == "echo"

    def test_fig1_word(self):
        w = word('"$(cd "${0%/*}" && echo $PWD)"')
        part = w.parts[0]
        assert isinstance(part, CmdSubPart)
        assert part.quoted
        from repro.shell.ast import AndOr

        assert isinstance(part.command, AndOr)
        assert part.command.op == "&&"

    def test_nested(self):
        part = word("$(echo $(date))").parts[0]
        inner = part.command.words[1].parts[0]
        assert isinstance(inner, CmdSubPart)


class TestGlobsAndTildes:
    def test_unquoted_star_is_glob(self):
        w = word('"$STEAMROOT"/*')
        assert isinstance(w.parts[0], ParamPart)
        assert w.parts[1].text == "/"
        assert isinstance(w.parts[2], GlobPart)
        assert w.parts[2].char == "*"

    def test_quoted_star_is_literal(self):
        w = word("'*'")
        assert isinstance(w.parts[0], LiteralPart)

    def test_question_glob(self):
        assert isinstance(word("a?c").parts[1], GlobPart)

    def test_has_glob(self):
        assert word("*.txt").has_glob()
        assert not word("'*.txt'").has_glob()

    def test_tilde(self):
        w = word("~/mine")
        assert isinstance(w.parts[0], TildePart)
        assert w.parts[0].user == ""
        assert w.parts[1].text == "/mine"

    def test_tilde_user(self):
        w = word("~alice/x")
        assert w.parts[0].user == "alice"


class TestArith:
    def test_arith(self):
        part = word("$((1+2))").parts[0]
        assert isinstance(part, ArithPart)
        assert part.expr == "1+2"
