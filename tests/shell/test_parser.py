"""Unit tests for the shell parser."""

import pytest

from repro.shell import (
    AndOr,
    Background,
    BraceGroup,
    Case,
    For,
    FunctionDef,
    If,
    Pipeline,
    Sequence,
    ShellSyntaxError,
    SimpleCommand,
    Subshell,
    While,
    parse,
    walk,
)


class TestSimpleCommands:
    def test_words(self):
        cmd = parse("echo hello world")
        assert isinstance(cmd, SimpleCommand)
        assert cmd.name == "echo"
        assert [w.literal_text() for w in cmd.words] == ["echo", "hello", "world"]

    def test_assignment_only(self):
        cmd = parse("FOO=bar")
        assert isinstance(cmd, SimpleCommand)
        assert not cmd.words
        assert cmd.assignments[0].name == "FOO"
        assert cmd.assignments[0].value.literal_text() == "bar"

    def test_assignment_prefix(self):
        cmd = parse("FOO=bar BAZ=qux cmd arg")
        assert [a.name for a in cmd.assignments] == ["FOO", "BAZ"]
        assert cmd.name == "cmd"

    def test_assignment_after_command_is_word(self):
        cmd = parse("echo FOO=bar")
        assert not cmd.assignments
        assert cmd.words[1].literal_text() == "FOO=bar"

    def test_empty_assignment_value(self):
        cmd = parse("FOO=")
        assert cmd.assignments[0].value.literal_text() == ""

    def test_redirects(self):
        cmd = parse("cmd >out.txt 2>err.txt <in.txt")
        assert [r.op for r in cmd.redirects] == [">", ">", "<"]
        assert cmd.redirects[1].fd == 2
        assert cmd.redirects[0].target.literal_text() == "out.txt"

    def test_append_redirect(self):
        cmd = parse("cmd >>log")
        assert cmd.redirects[0].op == ">>"

    def test_heredoc_redirect(self):
        cmd = parse("cat <<EOF\nbody\nEOF\n")
        assert cmd.redirects[0].op == "<<"
        assert cmd.redirects[0].heredoc_body == "body\n"


class TestPipelinesAndLists:
    def test_pipeline(self):
        cmd = parse("a | b | c")
        assert isinstance(cmd, Pipeline)
        assert [c.name for c in cmd.commands] == ["a", "b", "c"]

    def test_negated_pipeline(self):
        cmd = parse("! grep x f")
        assert isinstance(cmd, Pipeline)
        assert cmd.negated

    def test_andor(self):
        cmd = parse("a && b || c")
        assert isinstance(cmd, AndOr)
        assert cmd.op == "||"
        assert isinstance(cmd.left, AndOr)
        assert cmd.left.op == "&&"

    def test_andor_newline_continuation(self):
        cmd = parse("a &&\nb")
        assert isinstance(cmd, AndOr)

    def test_sequence_semicolon(self):
        cmd = parse("a; b; c")
        assert isinstance(cmd, Sequence)
        assert len(cmd.commands) == 3

    def test_sequence_newlines(self):
        cmd = parse("a\nb\n\nc\n")
        assert isinstance(cmd, Sequence)
        assert len(cmd.commands) == 3

    def test_background(self):
        cmd = parse("sleep 5 &")
        assert isinstance(cmd, Background)
        assert cmd.command.name == "sleep"

    def test_pipeline_newline_continuation(self):
        cmd = parse("a |\n  b")
        assert isinstance(cmd, Pipeline)


class TestCompound:
    def test_subshell(self):
        cmd = parse("(cd /tmp && ls)")
        assert isinstance(cmd, Subshell)
        assert isinstance(cmd.body, AndOr)

    def test_brace_group(self):
        cmd = parse("{ a; b; }")
        assert isinstance(cmd, BraceGroup)
        assert len(cmd.body.commands) == 2

    def test_if(self):
        cmd = parse("if true; then echo y; fi")
        assert isinstance(cmd, If)
        assert cmd.cond.name == "true"
        assert cmd.else_ is None

    def test_if_else(self):
        cmd = parse("if t; then a; else b; fi")
        assert cmd.else_.name == "b"

    def test_if_elif(self):
        cmd = parse("if t; then a; elif u; then b; else c; fi")
        assert len(cmd.elifs) == 1
        assert cmd.elifs[0].cond.name == "u"

    def test_while(self):
        cmd = parse("while read l; do echo $l; done")
        assert isinstance(cmd, While)
        assert not cmd.until

    def test_until(self):
        cmd = parse("until test -f x; do sleep 1; done")
        assert cmd.until

    def test_for_in(self):
        cmd = parse("for f in a b c; do echo $f; done")
        assert isinstance(cmd, For)
        assert cmd.var == "f"
        assert [w.literal_text() for w in cmd.words] == ["a", "b", "c"]

    def test_for_implicit(self):
        cmd = parse("for arg; do echo $arg; done")
        assert cmd.words is None

    def test_case(self):
        cmd = parse('case $x in\n a) echo 1 ;;\n b|c) echo 2 ;;\n *) echo 3 ;;\nesac')
        assert isinstance(cmd, Case)
        assert len(cmd.items) == 3
        assert [w.raw for w in cmd.items[1].patterns] == ["b", "c"]

    def test_case_empty_body(self):
        cmd = parse("case $x in a) ;; esac")
        assert cmd.items[0].body is None

    def test_case_open_paren_pattern(self):
        cmd = parse("case $x in (a) echo 1 ;; esac")
        assert cmd.items[0].patterns[0].raw == "a"

    def test_function(self):
        cmd = parse("greet() { echo hi; }")
        assert isinstance(cmd, FunctionDef)
        assert cmd.name == "greet"
        assert isinstance(cmd.body, BraceGroup)

    def test_compound_redirect(self):
        cmd = parse("if t; then a; fi >log 2>&1")
        assert [r.op for r in cmd.redirects] == [">", ">&"]

    def test_nested_if_in_while(self):
        cmd = parse("while t; do if u; then a; fi; done")
        assert isinstance(cmd.body, If)


class TestErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "if true; then fi",
            "while t; do done",
            "case x in esac)",
            "(a",
            "{ a;",
            "a &&",
            "| b",
            "a | | b",
            "for do done",
        ],
    )
    def test_syntax_errors(self, source):
        with pytest.raises(ShellSyntaxError):
            parse(source)


class TestPaperFigures:
    FIG1 = """#!/bin/sh
STEAMROOT="$(cd "${0%/*}" && echo $PWD)"
# ... more lines ...
rm -fr "$STEAMROOT"/*
"""

    FIG2 = """#!/bin/sh
STEAMROOT="$(cd "${0%/*}" && echo $PWD)"

if [ "$(realpath "$STEAMROOT/")" != "/" ]; then
  rm -fr "$STEAMROOT"/*
else
  echo "Bad script path: $0"; exit 1
fi
"""

    FIG5 = """#!/bin/sh
STEAMROOT="$(cd "${0%/*}" && echo $PWD)"/
case $(lsb_release -a | grep '^desc' | cut -f 2) in
  Debian) SUFFIX=".config/steam" ;;
  *Linux) SUFFIX=".steam" ;;
esac
rm -fr $STEAMROOT$SUFFIX
"""

    def test_fig1(self):
        ast = parse(self.FIG1)
        names = [n.name for n in walk(ast) if isinstance(n, SimpleCommand)]
        assert "rm" in names and "cd" in names and "echo" in names

    def test_fig1_structure(self):
        ast = parse(self.FIG1)
        assign = ast.commands[0].assignments[0]
        assert assign.name == "STEAMROOT"
        sub = assign.value.parts[0]
        assert isinstance(sub.command, AndOr)

    def test_fig2(self):
        ast = parse(self.FIG2)
        guards = [n for n in walk(ast) if isinstance(n, If)]
        assert len(guards) == 1
        test_cmd = guards[0].cond
        assert test_cmd.name == "["

    def test_fig5(self):
        ast = parse(self.FIG5)
        cases = [n for n in walk(ast) if isinstance(n, Case)]
        assert len(cases) == 1
        pipes = [n for n in walk(ast) if isinstance(n, Pipeline)]
        assert len(pipes) == 1
        assert [c.name for c in pipes[0].commands] == ["lsb_release", "grep", "cut"]

    def test_variant_snippet(self):
        ast = parse('c="/*"; rm -fr $STEAMROOT$c')
        assert isinstance(ast, Sequence)
        rm = ast.commands[1]
        assert rm.name == "rm"
        assert [p.name for p in rm.words[2].parts] == ["STEAMROOT", "c"]
