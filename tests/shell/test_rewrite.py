"""Printer multiline mode and the semantics-preserving rewrites.

``parse(rewrite(src))`` must be structurally equal to ``parse(src)``
for the structure-preserving rewrites (roundtrip, newlines), and must
reparse cleanly for all of them.
"""

import dataclasses

import pytest

from repro.shell.ast import BraceGroup, Sequence
from repro.shell.parser import parse
from repro.shell.printer import render
from repro.shell.rewrite import (
    REWRITES,
    _quotable,
    quote_literals,
    rewrite_brace_group,
    rewrite_newlines,
    rewrite_quotes,
)


def strip_pos(obj):
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return (type(obj).__name__,) + tuple(
            strip_pos(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
            if f.name != "pos"
        )
    if isinstance(obj, list):
        return tuple(strip_pos(x) for x in obj)
    return obj


SOURCES = [
    "a; b; c\n",
    "a &\nb\nwait\n",
    "mkdir cache && cd cache\n",
    "if [ -f x ]; then cat x; fi\n",
    'for f in a b c; do echo "$f"; done\n',
    'case "$1" in a) echo one ;; *) echo other ;; esac\n',
    "x=hello\necho $x > out.txt\n",
    "f() { echo hi; }\nf\n",
    "( cd /tmp && ls ) | wc -l\n",
    "! grep -q x f || exit 1\n",
    "while [ -e lock ]; do sleep 1; done\n",
]


class TestMultilineRender:
    @pytest.mark.parametrize("src", SOURCES)
    def test_structure_preserved(self, src):
        base = parse(src)
        out = render(base, multiline=True)
        assert strip_pos(parse(out)) == strip_pos(base)

    def test_one_command_per_line(self):
        out = render(parse("a; b; c\n"), multiline=True)
        assert out == "a\nb\nc"

    def test_background_line_has_no_semicolon(self):
        out = render(parse("a &\nb\n"), multiline=True)
        assert out == "a &\nb"

    def test_non_sequence_unchanged(self):
        assert render(parse("a && b\n"), multiline=True) == "a && b"


class TestQuoteRewrite:
    def test_quotes_plain_literals(self):
        out = rewrite_quotes("mkdir cache\n")
        assert out == 'mkdir "cache"'

    def test_command_name_left_bare(self):
        assert rewrite_quotes("mkdir cache\n").startswith("mkdir ")

    def test_globs_never_quoted(self):
        # quoting a glob would suppress expansion — semantics change
        assert rewrite_quotes("rm -f *.txt\n") == 'rm "-f" *.txt'

    def test_expansions_never_quoted(self):
        assert "$x" in rewrite_quotes("echo $x\n")
        assert '"$x"' not in rewrite_quotes("echo $x\n")

    def test_tilde_never_quoted(self):
        assert rewrite_quotes("ls ~/src\n") == "ls ~/src"

    def test_already_quoted_untouched(self):
        assert rewrite_quotes("echo 'a b'\n") == "echo 'a b'"

    def test_assignment_value_quoted(self):
        assert rewrite_quotes("x=hello\n") == 'x="hello"'

    def test_reparses(self):
        for src in SOURCES:
            parse(rewrite_quotes(src))

    def test_quotable_predicate(self):
        assert _quotable("cache")
        assert _quotable("file.txt")
        assert _quotable("-v")
        assert not _quotable("")
        assert not _quotable("*.txt")
        assert not _quotable("$HOME")
        assert not _quotable("a b")
        assert not _quotable("~me")
        assert not _quotable("x=y")
        assert not _quotable('say"hi"')


class TestBraceGroupRewrite:
    def test_wraps_whole_program(self):
        out = rewrite_brace_group("a; b\n")
        node = parse(out)
        assert isinstance(node, BraceGroup)
        assert strip_pos(node.body) == strip_pos(parse("a; b\n"))

    def test_background_termination_inside_braces(self):
        # `{ a & }` — a trailing & must not be followed by `;`
        out = rewrite_brace_group("a &\n")
        parse(out)
        assert "&;" not in out

    @pytest.mark.parametrize("src", SOURCES)
    def test_reparses(self, src):
        parse(rewrite_brace_group(src))

    def test_empty_program_not_wrapped(self):
        # fuzz-surfaced: `{ ; }` is a syntax error, so a comment-only
        # script must come back unwrapped
        assert rewrite_brace_group("#!/bin/sh\n").strip() == ""


class TestRewriteRegistry:
    def test_all_rewrites_reparse_all_sources(self):
        for src in SOURCES:
            for name, rw in REWRITES.items():
                parse(rw(src))

    def test_structure_preserving_rewrites(self):
        for src in SOURCES:
            base = strip_pos(parse(src))
            assert strip_pos(parse(rewrite_newlines(src))) == base, src
