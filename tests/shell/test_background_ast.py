"""Background (`&`) round trips and AST utilities."""

import pytest

from repro.shell import parse
from repro.shell.ast import Background, Sequence, first_pos, structure, walk
from repro.shell.printer import command_label, render


class TestRoundTrip:
    @pytest.mark.parametrize(
        "source",
        [
            "a &",
            "a & b",
            "a | b &",
            "{ a; b; } &",
            "cmd > f & grep x f",
            "a & b & c",
        ],
    )
    def test_parse_render_parse(self, source):
        ast = parse(source)
        rendered = render(ast)
        assert structure(parse(rendered)) == structure(ast), rendered

    def test_background_renders_ampersand(self):
        assert render(parse("sleep 5 &")).rstrip().endswith("&")


class TestWalk:
    def test_walk_descends_into_background_child(self):
        ast = parse("cmd > f & grep x f")
        names = [
            node.name
            for node in walk(ast)
            if getattr(node, "name", None) is not None
        ]
        assert "cmd" in names and "grep" in names

    def test_background_node_present(self):
        ast = parse("a & b")
        kinds = [type(node).__name__ for node in walk(ast)]
        assert "Background" in kinds


class TestFirstPos:
    def test_first_pos_of_background(self):
        ast = parse("cmd > f &\ngrep x f\n")
        assert isinstance(ast, Sequence)
        bg = ast.commands[0]
        assert isinstance(bg, Background)
        pos = first_pos(bg)
        assert (pos.line, pos.col) == (1, 1)

    def test_first_pos_none_for_empty(self):
        assert first_pos(None) is None


class TestCommandLabel:
    def test_label_collapses_whitespace(self):
        ast = parse("grep   x    f")
        assert command_label(ast) == "grep x f"

    def test_label_truncates(self):
        ast = parse("echo " + "x" * 100)
        label = command_label(ast, limit=20)
        assert len(label) <= 20 and label.endswith("…")
