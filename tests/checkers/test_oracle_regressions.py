"""Minimized regressions for bugs surfaced by the differential oracles.

Each test is the smallest script that reproduced a disagreement between
the static verdict and either the dynamic (sandboxed-execution) oracle
or the metamorphic (semantics-preserving rewrite) oracle.
"""

from repro.analysis.analyzer import analyze


def _codes(source, **kwargs):
    return sorted(d.code for d in analyze(source, **kwargs).diagnostics)


class TestDeletionTrailingSlash:
    """Dynamic-oracle FN: ``rm -rf /opt/`` deletes a root child exactly
    like ``rm -rf /opt``, but the trailing slash escaped DANGER_PATTERN."""

    def test_trailing_slash_flagged(self):
        assert "dangerous-deletion" in _codes("rm -rf /opt/\n")

    def test_trailing_dotdot_flagged(self):
        assert "dangerous-deletion" in _codes("rm -rf /opt/..\n")

    def test_trailing_dot_slash_flagged(self):
        assert "dangerous-deletion" in _codes("rm -rf /opt/./\n")

    def test_deep_path_with_trailing_slash_still_safe(self):
        assert "dangerous-deletion" not in _codes("rm -rf /opt/app/cache/\n")

    def test_relative_trailing_slash_still_safe(self):
        assert "dangerous-deletion" not in _codes("rm -rf ./build/\n")


class TestMktempLanguageVsTrailingSlash:
    """The tightened DANGER_PATTERN must not reopen the PR 3 mktemp FP:
    mktemp's output language excludes ``/tmp/..`` and bare ``/tmp/``."""

    def test_mktemp_deletion_not_dangerous(self):
        src = 't=$(mktemp)\nrm -rf "$t"\n'
        assert "dangerous-deletion" not in _codes(src)


class TestStalePlatformSpec:
    """Dynamic-oracle FP: GNU ls supports ``-G`` (--no-group), so the
    flag is portable; only ``--color`` is GNU-specific."""

    def test_ls_dash_g_portable(self):
        diags = analyze("ls -G\n", platform_targets=["linux", "macos"]).diagnostics
        assert not [d for d in diags if d.code == "platform-flag"]

    def test_ls_color_still_gnu_only(self):
        diags = analyze(
            "ls --color=auto\n", platform_targets=["linux", "macos"]
        ).diagnostics
        assert [d for d in diags if d.code == "platform-flag"]


class TestGuardedIdempotence:
    """Dynamic-oracle FP (run-twice): ``[ -d X ] || mkdir X`` succeeds on
    every run — the guard's failure branch establishes the fact the
    checker needs to stay quiet."""

    def _idem(self, source):
        return [d for d in analyze(source).diagnostics if d.code == "idempotence"]

    def test_or_guarded_mkdir_quiet(self):
        assert not self._idem("[ -d ./cache ] || mkdir ./cache\n")

    def test_if_guarded_mkdir_quiet(self):
        assert not self._idem("if [ ! -d ./cache ]; then mkdir ./cache; fi\n")

    def test_exists_guarded_ln_quiet(self):
        assert not self._idem("[ -e link ] || ln -s target link\n")

    def test_symlink_guarded_ln_quiet(self):
        assert not self._idem("[ -h link ] || ln -s target link\n")

    def test_unguarded_mkdir_still_fires(self):
        assert self._idem("mkdir ./cache\n")

    def test_unguarded_ln_still_fires(self):
        assert self._idem("ln -s target link\n")

    def test_wrong_path_guard_still_fires(self):
        assert self._idem("[ -d other ] || mkdir ./cache\n")

    def test_inverted_guard_still_fires(self):
        # runs mkdir in the world where the dir EXISTS: a real hazard
        assert self._idem("[ -d zdir ] && mkdir zdir\n")

    def test_dash_p_still_exempt(self):
        assert not self._idem("mkdir -p ./cache\n")


class TestGlobComponentStart:
    """Metamorphic/dynamic: pathname expansion produces actual directory
    entries — ``$X/*`` never denotes bare ``$X/`` (empty match) nor
    ``$X/..`` (leading dot), so the guarded Steam fix stays clean even
    with the trailing-slash-aware danger language."""

    def test_component_start_glob_excludes_empty_and_dots(self):
        from repro.symstr import ConstraintStore, SymString
        from repro.symstr.value import GlobAtom, LitAtom

        store = ConstraintStore()
        lang = SymString([LitAtom("/x/"), GlobAtom("*")]).to_regex(store)
        assert not lang.matches("/x/")
        assert not lang.matches("/x/.hidden")
        assert not lang.matches("/x/..")
        assert lang.matches("/x/entry")
        assert lang.matches("/x/has.dot")

    def test_mid_component_glob_still_matches_empty(self):
        from repro.symstr import ConstraintStore, SymString
        from repro.symstr.value import GlobAtom, LitAtom

        store = ConstraintStore()
        lang = SymString([LitAtom("foo"), GlobAtom("*")]).to_regex(store)
        assert lang.matches("foo")
        assert lang.matches("foo.bar")

    def test_star_deletion_with_possibly_empty_var_still_flagged(self):
        assert "dangerous-deletion" in _codes('rm -fr "$1"/*\n', n_args=1)


class TestRaceMessageStability:
    """Metamorphic-oracle diff: hazard messages embedded raw ``<vN>``
    ids from the process-global variable counter, so the same script
    analyzed twice produced different diagnostics.  Messages now use
    per-graph canonical names (``<$1>``, ``<sym1>``)."""

    SRC = 'grep pattern "$1" &\nrm "$1"\nwait\n'

    def _race_messages(self, source):
        return sorted(
            (d.code, d.message, tuple(d.related))
            for d in analyze(source, n_args=1).diagnostics
            if d.code.startswith("race")
        )

    def test_repeated_analysis_byte_identical(self):
        assert self._race_messages(self.SRC) == self._race_messages(self.SRC)

    def test_label_used_not_raw_vid(self):
        import re

        for _, message, _ in self._race_messages(self.SRC):
            assert not re.search(r"<v\d+>", message), message

    def test_anonymous_vid_gets_canonical_name(self):
        src = 't=$(mktemp)\ncat "$t" &\nrm "$t"\nwait\n'
        first = self._race_messages(src)
        assert first == self._race_messages(src)
        import re

        for _, message, _ in first:
            assert not re.search(r"<v\d+>", message), message
