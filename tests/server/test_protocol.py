"""Wire-protocol unit tests: framing, config marshalling, socket paths."""

import io

import pytest

from repro.analysis.batch import BatchConfig
from repro.server import protocol


class TestFraming:
    def test_encode_is_one_line(self):
        frame = protocol.encode({"op": "ping"})
        assert frame.endswith(b"\n")
        assert frame.count(b"\n") == 1

    def test_round_trip(self):
        message = {"op": "analyze", "source": "echo hi\n", "config": {}}
        assert protocol.decode(protocol.encode(message).rstrip(b"\n")) == message

    def test_decode_rejects_garbage(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b"not json at all {")

    def test_decode_rejects_non_object(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b"[1, 2, 3]")

    def test_read_message_eof(self):
        assert protocol.read_message(io.BytesIO(b"")) is None

    def test_read_message_sequence(self):
        stream = io.BytesIO(protocol.encode({"op": "ping"}) + protocol.encode({"op": "stats"}))
        assert protocol.read_message(stream) == {"op": "ping"}
        assert protocol.read_message(stream) == {"op": "stats"}
        assert protocol.read_message(stream) is None

    def test_ok_and_error_shapes(self):
        assert protocol.ok({"x": 1}) == {"ok": True, "result": {"x": 1}}
        assert protocol.error("boom") == {"ok": False, "error": "boom"}


class TestConfigMarshalling:
    def test_default_config_is_empty_on_the_wire(self):
        assert protocol.config_to_wire(BatchConfig()) == {}

    def test_round_trip_preserves_fingerprint(self):
        config = BatchConfig(
            args=("a", "b"),
            platform_targets=("debian",),
            include_lint=True,
            max_loop=3,
            timeout=5.0,
        )
        wire = protocol.config_to_wire(config)
        restored = protocol.config_from_wire(wire)
        assert restored == config
        assert restored.fingerprint() == config.fingerprint()

    def test_unknown_fields_ignored(self):
        restored = protocol.config_from_wire({"n_args": 2, "from_the_future": True})
        assert restored.n_args == 2

    def test_lists_become_tuples(self):
        restored = protocol.config_from_wire({"args": ["x", "y"]})
        assert restored.args == ("x", "y")

    def test_none_config(self):
        assert protocol.config_from_wire(None) == BatchConfig()


class TestSocketPath:
    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv(protocol.SOCKET_ENV, "/tmp/custom.sock")
        assert protocol.default_socket_path() == "/tmp/custom.sock"

    def test_default_is_per_user(self, monkeypatch):
        monkeypatch.delenv(protocol.SOCKET_ENV, raising=False)
        path = protocol.default_socket_path()
        assert path.endswith(".sock")
