"""End-to-end daemon/client tests over a real Unix socket.

Each test spins the daemon up on a socket in tmp_path with ``jobs=1``
(no multiprocessing: sandbox-safe and fast) and talks to it through
:class:`~repro.server.ServerClient`.
"""

import os
import threading
import time

import pytest

from repro.analysis.batch import BatchConfig, run_batch
from repro.analysis.cache import ResultCache
from repro.obs import TraceRecorder
from repro.server import (
    AnalysisServer,
    ServerClient,
    ServerError,
    ServerUnavailable,
    Watcher,
    server_available,
)


@pytest.fixture()
def daemon(tmp_path):
    """A running daemon (warm cache dir, jobs=1) plus its socket path."""
    socket_path = str(tmp_path / "served.sock")
    server = AnalysisServer(
        socket_path=socket_path,
        jobs=1,
        cache=ResultCache(str(tmp_path / "cache")),
        recorder=TraceRecorder(),
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    deadline = time.monotonic() + 5.0
    while not os.path.exists(socket_path):
        if time.monotonic() > deadline:
            pytest.fail("daemon socket never appeared")
        time.sleep(0.01)
    yield server
    if thread.is_alive():
        try:
            ServerClient(socket_path).shutdown()
        except (ServerUnavailable, ServerError):
            pass
        thread.join(timeout=5.0)


def _corpus(tmp_path):
    scripts = tmp_path / "scripts"
    scripts.mkdir(exist_ok=True)
    (scripts / "guard.sh").write_text(
        'if [ "$#" -lt 1 ]; then exit 1; fi\necho "$1"\n'
    )
    (scripts / "danger.sh").write_text('rm -rf "$STEAMROOT/"*\n')
    return str(scripts)


class TestOps:
    def test_ping(self, daemon):
        result = ServerClient(daemon.socket_path).ping()
        assert result["protocol"] == 1
        assert result["pid"] == os.getpid() or result["pid"] > 0

    def test_analyze_source(self, daemon):
        report = ServerClient(daemon.socket_path).analyze_source(
            'case "$1" in foo) echo hi;; esac\n'
        )
        assert not report.diagnostics

    def test_analyze_source_cached_second_time(self, daemon):
        client = ServerClient(daemon.socket_path)
        source = "echo one\n"
        client.analyze_source(source)
        result = client.request({"op": "analyze", "source": source, "config": {}})
        assert result["cached"] is True

    def test_analyze_path(self, daemon, tmp_path):
        script = tmp_path / "one.sh"
        script.write_text("rm -rf /\n")
        result = ServerClient(daemon.socket_path).request(
            {"op": "analyze", "path": str(script)}
        )
        codes = [d["code"] for d in result["report"]["diagnostics"]]
        assert "dangerous-deletion" in codes

    def test_batch_matches_inline_run(self, daemon, tmp_path):
        corpus = _corpus(tmp_path)
        client_batch = ServerClient(daemon.socket_path).batch([corpus])
        inline = run_batch([corpus], config=BatchConfig(), jobs=1, cache=None)
        assert client_batch.render() == inline.render()

    def test_batch_warm_is_all_hits_and_byte_identical(self, daemon, tmp_path):
        corpus = _corpus(tmp_path)
        client = ServerClient(daemon.socket_path)
        cold = client.batch([corpus])
        warm = client.batch([corpus])
        assert cold.misses == 2 and cold.hits == 0
        assert warm.hits == 2 and warm.misses == 0
        assert warm.render() == cold.render()

    def test_warm_batch_does_zero_symbolic_execution(self, daemon, tmp_path):
        corpus = _corpus(tmp_path)
        client = ServerClient(daemon.socket_path)
        client.batch([corpus])
        before = daemon.recorder.counter("batch.cache.miss")
        client.batch([corpus])
        assert daemon.recorder.counter("batch.cache.miss") == before

    def test_stats_op(self, daemon, tmp_path):
        client = ServerClient(daemon.socket_path)
        client.batch([_corpus(tmp_path)])
        stats = client.stats()
        assert stats["requests"] >= 1
        assert stats["uptime_s"] >= 0
        counters = stats["metrics"]["counters"]
        assert counters.get("server.requests", 0) >= 1
        assert counters.get("batch.files", 0) == 2

    def test_unknown_op_is_an_error_response(self, daemon):
        client = ServerClient(daemon.socket_path)
        with pytest.raises(ServerError):
            client.request({"op": "frobnicate"})
        # the connection survives the error
        assert client.ping()["protocol"] == 1

    def test_malformed_request_payload(self, daemon):
        client = ServerClient(daemon.socket_path)
        with pytest.raises(ServerError):
            client.request({"op": "analyze"})  # neither source nor path

    def test_budget_clamped_to_server_cap(self, daemon):
        # a client asking for an hour gets the server's ceiling instead
        config = daemon._clamped(BatchConfig(timeout=3600.0))
        assert config.timeout == daemon.cap_deadline
        assert config.max_states == daemon.cap_states

    def test_budget_smaller_request_respected(self, daemon):
        config = daemon._clamped(BatchConfig(timeout=1.0, max_states=10))
        assert config.timeout == 1.0
        assert config.max_states == 10

    def test_concurrent_requests(self, daemon, tmp_path):
        corpus = _corpus(tmp_path)
        errors = []

        def hit():
            try:
                ServerClient(daemon.socket_path).batch([corpus])
            except Exception as exc:  # noqa: BLE001 — collected for assert
                errors.append(exc)

        threads = [threading.Thread(target=hit) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors

    def test_server_available_and_shutdown(self, daemon):
        assert server_available(daemon.socket_path)
        ServerClient(daemon.socket_path).shutdown()
        deadline = time.monotonic() + 5.0
        while server_available(daemon.socket_path):
            if time.monotonic() > deadline:
                pytest.fail("daemon did not stop")
            time.sleep(0.02)


class TestClientFallback:
    def test_no_daemon_raises_server_unavailable(self, tmp_path):
        with pytest.raises(ServerUnavailable):
            ServerClient(str(tmp_path / "nothing.sock")).ping()

    def test_server_available_false_without_daemon(self, tmp_path):
        assert not server_available(str(tmp_path / "nothing.sock"))


class TestWatcher:
    def test_first_scan_reports_everything(self, tmp_path):
        corpus = _corpus(tmp_path)
        watcher = Watcher([corpus])
        assert len(watcher.scan()) == 2

    def test_unchanged_scan_reports_nothing(self, tmp_path):
        watcher = Watcher([_corpus(tmp_path)])
        watcher.scan()
        assert watcher.scan() == []

    def test_modification_detected(self, tmp_path):
        corpus = _corpus(tmp_path)
        watcher = Watcher([corpus])
        watcher.scan()
        target = os.path.join(corpus, "guard.sh")
        with open(target, "a", encoding="utf-8") as handle:
            handle.write("echo more\n")
        changed = watcher.scan()
        assert changed == [target]

    def test_new_file_detected(self, tmp_path):
        corpus = _corpus(tmp_path)
        watcher = Watcher([corpus])
        watcher.scan()
        new_path = os.path.join(corpus, "zz.sh")
        with open(new_path, "w", encoding="utf-8") as handle:
            handle.write("echo new\n")
        assert watcher.scan() == [new_path]

    def test_deleted_file_dropped_silently(self, tmp_path):
        corpus = _corpus(tmp_path)
        watcher = Watcher([corpus])
        watcher.scan()
        os.unlink(os.path.join(corpus, "danger.sh"))
        assert watcher.scan() == []

    def test_watch_mode_warms_the_cache(self, daemon, tmp_path):
        corpus = _corpus(tmp_path)
        daemon.start_watcher([corpus], interval=0.05)
        client = ServerClient(daemon.socket_path)
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            batch = client.batch([corpus])
            if batch.hits == 2 and batch.misses == 0:
                break
            time.sleep(0.05)
        else:
            pytest.fail("watcher never warmed the cache")
