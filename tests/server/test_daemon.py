"""End-to-end daemon/client tests over a real Unix socket.

Each test spins the daemon up on a socket in tmp_path with ``jobs=1``
(no multiprocessing: sandbox-safe and fast) and talks to it through
:class:`~repro.server.ServerClient`.
"""

import os
import threading
import time

import pytest

from repro.analysis.batch import BatchConfig, run_batch
from repro.analysis.cache import ResultCache
from repro.obs import OpsLogger, TraceRecorder, use_recorder
from repro.server import (
    AnalysisServer,
    ServerClient,
    ServerError,
    ServerUnavailable,
    Watcher,
    server_available,
)


@pytest.fixture()
def daemon(tmp_path):
    """A running daemon (warm cache dir, jobs=1) plus its socket path."""
    socket_path = str(tmp_path / "served.sock")
    server = AnalysisServer(
        socket_path=socket_path,
        jobs=1,
        cache=ResultCache(str(tmp_path / "cache")),
        recorder=TraceRecorder(),
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    deadline = time.monotonic() + 5.0
    while not os.path.exists(socket_path):
        if time.monotonic() > deadline:
            pytest.fail("daemon socket never appeared")
        time.sleep(0.01)
    yield server
    if thread.is_alive():
        try:
            ServerClient(socket_path).shutdown()
        except (ServerUnavailable, ServerError):
            pass
        thread.join(timeout=5.0)


def _corpus(tmp_path):
    scripts = tmp_path / "scripts"
    scripts.mkdir(exist_ok=True)
    (scripts / "guard.sh").write_text(
        'if [ "$#" -lt 1 ]; then exit 1; fi\necho "$1"\n'
    )
    (scripts / "danger.sh").write_text('rm -rf "$STEAMROOT/"*\n')
    return str(scripts)


class TestOps:
    def test_ping(self, daemon):
        result = ServerClient(daemon.socket_path).ping()
        assert result["protocol"] == 1
        assert result["pid"] == os.getpid() or result["pid"] > 0

    def test_analyze_source(self, daemon):
        report = ServerClient(daemon.socket_path).analyze_source(
            'case "$1" in foo) echo hi;; esac\n'
        )
        assert not report.diagnostics

    def test_analyze_source_cached_second_time(self, daemon):
        client = ServerClient(daemon.socket_path)
        source = "echo one\n"
        client.analyze_source(source)
        result = client.request({"op": "analyze", "source": source, "config": {}})
        assert result["cached"] is True

    def test_analyze_path(self, daemon, tmp_path):
        script = tmp_path / "one.sh"
        script.write_text("rm -rf /\n")
        result = ServerClient(daemon.socket_path).request(
            {"op": "analyze", "path": str(script)}
        )
        codes = [d["code"] for d in result["report"]["diagnostics"]]
        assert "dangerous-deletion" in codes

    def test_batch_matches_inline_run(self, daemon, tmp_path):
        corpus = _corpus(tmp_path)
        client_batch = ServerClient(daemon.socket_path).batch([corpus])
        inline = run_batch([corpus], config=BatchConfig(), jobs=1, cache=None)
        assert client_batch.render() == inline.render()

    def test_batch_warm_is_all_hits_and_byte_identical(self, daemon, tmp_path):
        corpus = _corpus(tmp_path)
        client = ServerClient(daemon.socket_path)
        cold = client.batch([corpus])
        warm = client.batch([corpus])
        assert cold.misses == 2 and cold.hits == 0
        assert warm.hits == 2 and warm.misses == 0
        assert warm.render() == cold.render()

    def test_warm_batch_does_zero_symbolic_execution(self, daemon, tmp_path):
        corpus = _corpus(tmp_path)
        client = ServerClient(daemon.socket_path)
        client.batch([corpus])
        before = daemon.recorder.counter("batch.cache.miss")
        client.batch([corpus])
        assert daemon.recorder.counter("batch.cache.miss") == before

    def test_stats_op(self, daemon, tmp_path):
        client = ServerClient(daemon.socket_path)
        client.batch([_corpus(tmp_path)])
        stats = client.stats()
        assert stats["requests"] >= 1
        assert stats["uptime_s"] >= 0
        counters = stats["metrics"]["counters"]
        assert counters.get("server.requests", 0) >= 1
        assert counters.get("batch.files", 0) == 2

    def test_unknown_op_is_an_error_response(self, daemon):
        client = ServerClient(daemon.socket_path)
        with pytest.raises(ServerError):
            client.request({"op": "frobnicate"})
        # the connection survives the error
        assert client.ping()["protocol"] == 1

    def test_malformed_request_payload(self, daemon):
        client = ServerClient(daemon.socket_path)
        with pytest.raises(ServerError):
            client.request({"op": "analyze"})  # neither source nor path

    def test_budget_clamped_to_server_cap(self, daemon):
        # a client asking for an hour gets the server's ceiling instead
        config = daemon._clamped(BatchConfig(timeout=3600.0))
        assert config.timeout == daemon.cap_deadline
        assert config.max_states == daemon.cap_states

    def test_budget_smaller_request_respected(self, daemon):
        config = daemon._clamped(BatchConfig(timeout=1.0, max_states=10))
        assert config.timeout == 1.0
        assert config.max_states == 10

    def test_concurrent_requests(self, daemon, tmp_path):
        corpus = _corpus(tmp_path)
        errors = []

        def hit():
            try:
                ServerClient(daemon.socket_path).batch([corpus])
            except Exception as exc:  # noqa: BLE001 — collected for assert
                errors.append(exc)

        threads = [threading.Thread(target=hit) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors

    def test_server_available_and_shutdown(self, daemon):
        assert server_available(daemon.socket_path)
        ServerClient(daemon.socket_path).shutdown()
        deadline = time.monotonic() + 5.0
        while server_available(daemon.socket_path):
            if time.monotonic() > deadline:
                pytest.fail("daemon did not stop")
            time.sleep(0.02)


class TestClientFallback:
    def test_no_daemon_raises_server_unavailable(self, tmp_path):
        with pytest.raises(ServerUnavailable):
            ServerClient(str(tmp_path / "nothing.sock")).ping()

    def test_server_available_false_without_daemon(self, tmp_path):
        assert not server_available(str(tmp_path / "nothing.sock"))


class TestWatcher:
    def test_first_scan_reports_everything(self, tmp_path):
        corpus = _corpus(tmp_path)
        watcher = Watcher([corpus])
        assert len(watcher.scan().changed) == 2

    def test_unchanged_scan_reports_nothing(self, tmp_path):
        watcher = Watcher([_corpus(tmp_path)])
        watcher.scan()
        assert watcher.scan() == ([], [])

    def test_modification_detected(self, tmp_path):
        corpus = _corpus(tmp_path)
        watcher = Watcher([corpus])
        watcher.scan()
        target = os.path.join(corpus, "guard.sh")
        with open(target, "a", encoding="utf-8") as handle:
            handle.write("echo more\n")
        changed, deleted = watcher.scan()
        assert changed == [target]
        assert deleted == []

    def test_new_file_detected(self, tmp_path):
        corpus = _corpus(tmp_path)
        watcher = Watcher([corpus])
        watcher.scan()
        new_path = os.path.join(corpus, "zz.sh")
        with open(new_path, "w", encoding="utf-8") as handle:
            handle.write("echo new\n")
        assert watcher.scan() == ([new_path], [])

    def test_deleted_file_reported_and_evicted(self, tmp_path):
        corpus = _corpus(tmp_path)
        watcher = Watcher([corpus])
        watcher.scan()
        gone = os.path.join(corpus, "danger.sh")
        os.unlink(gone)
        recorder = TraceRecorder()
        with use_recorder(recorder):
            changed, deleted = watcher.scan()
        assert changed == []
        assert deleted == [gone]
        assert watcher.deletions == 1
        assert recorder.counter("watch.deleted") == 1
        # reported exactly once: the next scan is quiet again
        assert watcher.scan() == ([], [])

    def test_rename_is_deletion_plus_new_path(self, tmp_path):
        corpus = _corpus(tmp_path)
        watcher = Watcher([corpus])
        watcher.scan()
        old = os.path.join(corpus, "danger.sh")
        new = os.path.join(corpus, "renamed.sh")
        os.rename(old, new)
        changed, deleted = watcher.scan()
        assert changed == [new]
        assert deleted == [old]

    def test_deletion_logged(self, tmp_path):
        import json

        corpus = _corpus(tmp_path)
        log_path = str(tmp_path / "watch.log")
        watcher = Watcher([corpus], log=OpsLogger(log_path))
        watcher.scan()
        gone = os.path.join(corpus, "danger.sh")
        os.unlink(gone)
        watcher.scan()
        with open(log_path, "r", encoding="utf-8") as handle:
            events = [json.loads(line) for line in handle]
        [event] = [e for e in events if e["event"] == "watch.deleted"]
        assert event["path"] == gone

    def test_watch_mode_warms_the_cache(self, daemon, tmp_path):
        corpus = _corpus(tmp_path)
        daemon.start_watcher([corpus], interval=0.05)
        client = ServerClient(daemon.socket_path)
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            batch = client.batch([corpus])
            if batch.hits == 2 and batch.misses == 0:
                break
            time.sleep(0.05)
        else:
            pytest.fail("watcher never warmed the cache")


class TestRequestTelemetry:
    """Request-scoped tracing: ids, envelope metrics, and the invariant
    that per-request snapshots sum into the server totals."""

    def test_every_response_carries_a_unique_request_id(self, daemon):
        client = ServerClient(daemon.socket_path)
        ids = []
        for _ in range(3):
            client.ping()
            ids.append(client.last_request_id)
        assert all(ids)
        assert len(set(ids)) == 3

    def test_error_responses_carry_request_ids_too(self, daemon):
        client = ServerClient(daemon.socket_path)
        with pytest.raises(ServerError):
            client.request({"op": "frobnicate"})
        assert client.last_request_id

    def test_envelope_metrics_show_where_the_request_spent_time(self, daemon):
        client = ServerClient(daemon.socket_path)
        client.analyze_source("grep pattern /etc/hosts > /tmp/out\n")
        metrics = client.last_metrics
        assert metrics is not None
        assert metrics["counters"]["server.requests"] == 1
        assert metrics["counters"]["server.op.analyze"] == 1
        assert "server.request_ms.analyze" in metrics["histograms"]
        assert client.last_elapsed_ms > 0

    def test_telemetry_false_suppresses_envelope_metrics(self, daemon):
        client = ServerClient(daemon.socket_path)
        client.request({"op": "ping", "telemetry": False})
        assert client.last_metrics is None
        assert client.last_request_id  # the id survives opting out

    def test_per_request_metrics_sum_into_stats_totals(self, daemon, tmp_path):
        """The consistency invariant: summing the envelope snapshots of
        every request must reproduce the stats-op counters exactly."""
        from repro.obs import MetricsSnapshot

        client = ServerClient(daemon.socket_path)
        summed = MetricsSnapshot()
        client.analyze_source("echo request-sum-one\n")
        summed.merge(MetricsSnapshot.from_dict(client.last_metrics))
        client.analyze_source("echo request-sum-one\n")  # cache hit
        summed.merge(MetricsSnapshot.from_dict(client.last_metrics))
        client.batch([_corpus(tmp_path)])
        summed.merge(MetricsSnapshot.from_dict(client.last_metrics))

        totals = MetricsSnapshot.from_dict(client.stats()["metrics"])
        for name, value in summed.counters.items():
            assert totals.counter(name) >= value, name
        # this client was the only traffic source for these counters
        assert totals.counter("server.op.analyze") == 2
        assert totals.counter("batch.cache.hit") == summed.counter(
            "batch.cache.hit"
        )
        assert (
            totals.histogram("server.request_ms.analyze").count
            == summed.histogram("server.request_ms.analyze").count
            == 2
        )

    def test_concurrent_requests_do_not_cross_contaminate(self, daemon, tmp_path):
        corpus = _corpus(tmp_path)
        results = []

        def hit():
            client = ServerClient(daemon.socket_path)
            client.batch([corpus])
            results.append(client.last_metrics)

        threads = [threading.Thread(target=hit) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert len(results) == 4
        for metrics in results:
            # each request sees exactly its own accounting
            assert metrics["counters"]["server.requests"] == 1
            assert metrics["counters"]["server.op.batch"] == 1


class TestExtendedStats:
    def test_stats_operational_fields(self, daemon, tmp_path):
        client = ServerClient(daemon.socket_path)
        client.batch([_corpus(tmp_path)])
        client.batch([_corpus(tmp_path)])  # warm: all hits
        stats = client.stats()
        assert stats["uptime_s"] >= 0
        assert stats["request_rate_rps"] > 0
        assert stats["inflight"] == 1  # the stats request itself
        assert stats["max_inflight"] >= 1
        assert stats["errors"] == 0
        assert stats["shed"] == 0
        assert stats["pool_alive"] is False  # jobs=1: no pool
        assert stats["cache_hits"] == 2 and stats["cache_misses"] == 2
        assert stats["cache_hit_rate"] == 0.5

    def test_stats_latency_quantiles_per_op(self, daemon):
        client = ServerClient(daemon.socket_path)
        for index in range(3):
            client.analyze_source(f"echo latency-{index}\n")
        stats = client.stats()
        latency = stats["latency_ms"]["analyze"]
        assert latency["count"] == 3
        assert latency["p50_ms"] is not None
        assert latency["p50_ms"] <= latency["p95_ms"] <= latency["p99_ms"]
        assert latency["max_ms"] >= latency["p99_ms"]

    def test_budget_clamp_is_counted(self, daemon):
        client = ServerClient(daemon.socket_path)
        client.request(
            {
                "op": "analyze",
                "source": "echo clamp\n",
                "config": {"timeout": 999999.0},
            }
        )
        assert client.last_metrics["counters"]["server.budget_clamped"] == 1
        assert client.stats()["budget_clamps"] >= 1

    def test_in_cap_budget_not_counted_as_clamp(self, daemon):
        client = ServerClient(daemon.socket_path)
        client.request(
            {"op": "analyze", "source": "echo ok\n", "config": {"timeout": 1.0}}
        )
        assert "server.budget_clamped" not in client.last_metrics["counters"]


class TestMetricsOp:
    def test_prometheus_text_scrapes(self, daemon, tmp_path):
        client = ServerClient(daemon.socket_path)
        client.batch([_corpus(tmp_path)])
        text = client.metrics_text()
        assert "repro_server_requests_total" in text
        assert "repro_batch_files_total" in text
        assert "repro_server_request_ms summary" in text
        assert "repro_server_uptime_seconds" in text
        # exposition contract: every line is a comment or name+value
        for line in text.strip().splitlines():
            if line.startswith("#"):
                continue
            name, value = line.rsplit(" ", 1)
            float(value)


class TestLoadShedding:
    def test_requests_beyond_max_inflight_are_shed(self, tmp_path):
        socket_path = str(tmp_path / "shed.sock")
        server = AnalysisServer(
            socket_path=socket_path,
            jobs=1,
            cache=None,
            recorder=TraceRecorder(),
            max_inflight=0,  # everything sheds — deterministic
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        deadline = time.monotonic() + 5.0
        while not os.path.exists(socket_path):
            if time.monotonic() > deadline:
                pytest.fail("daemon socket never appeared")
            time.sleep(0.01)
        try:
            client = ServerClient(socket_path)
            with pytest.raises(ServerError, match="overloaded"):
                client.ping()
            assert client.last_request_id
            assert server.recorder.counter("server.shed") == 1
        finally:
            server._initiate_shutdown()
            thread.join(timeout=5.0)


class TestOpsLog:
    @pytest.fixture()
    def logged_daemon(self, tmp_path):
        from repro.obs import OpsLogger

        socket_path = str(tmp_path / "logged.sock")
        log_path = str(tmp_path / "ops.jsonl")
        server = AnalysisServer(
            socket_path=socket_path,
            jobs=1,
            cache=ResultCache(str(tmp_path / "cache")),
            recorder=TraceRecorder(),
            log=OpsLogger(log_path, level="debug"),
            slow_ms=0.0,  # every request is "slow": exercises the path
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        deadline = time.monotonic() + 5.0
        while not os.path.exists(socket_path):
            if time.monotonic() > deadline:
                pytest.fail("daemon socket never appeared")
            time.sleep(0.01)
        yield server, log_path
        if thread.is_alive():
            try:
                ServerClient(socket_path).shutdown()
            except (ServerUnavailable, ServerError):
                pass
            thread.join(timeout=5.0)

    def _events(self, log_path):
        import json

        with open(log_path, "r", encoding="utf-8") as handle:
            return [json.loads(line) for line in handle]

    def test_request_lifecycle_events(self, logged_daemon):
        server, log_path = logged_daemon
        client = ServerClient(server.socket_path)
        client.analyze_source("echo logged\n")
        events = self._events(log_path)
        kinds = [e["event"] for e in events]
        assert "server.start" in kinds
        assert "request.accept" in kinds
        assert "request.done" in kinds
        assert "request.slow" in kinds  # slow_ms=0 makes everything slow
        done = next(e for e in events if e["event"] == "request.done")
        assert done["op"] == "analyze"
        assert done["request_id"] == client.last_request_id
        assert done["elapsed_ms"] > 0

    def test_failed_request_logs_structured_error(self, logged_daemon):
        server, log_path = logged_daemon
        client = ServerClient(server.socket_path)
        with pytest.raises(ServerError):
            client.request({"op": "analyze"})  # neither source nor path
        errors = [
            e for e in self._events(log_path) if e["event"] == "request.error"
        ]
        assert errors and errors[0]["error_type"] == "ValueError"
        assert errors[0]["request_id"] == client.last_request_id
        assert server.recorder.counter("server.errors") == 1


class TestWatcherStatErrors:
    def test_unreadable_path_bumps_counter_and_logs(self, tmp_path):
        from repro.obs import OpsLogger, TraceRecorder, use_recorder
        from repro.server import watch as watch_mod

        log_path = str(tmp_path / "watch.jsonl")
        corpus = _corpus(tmp_path)
        watcher = Watcher([corpus], log=OpsLogger(log_path))
        original_stat = os.stat

        def failing_stat(path, *args, **kwargs):
            if str(path).endswith("guard.sh"):
                raise PermissionError(13, "Permission denied", str(path))
            return original_stat(path, *args, **kwargs)

        recorder = TraceRecorder()
        watch_mod.os.stat = failing_stat
        try:
            with use_recorder(recorder):
                changed, _deleted = watcher.scan()
        finally:
            watch_mod.os.stat = original_stat
        assert len(changed) == 1  # danger.sh still reported
        assert watcher.stat_errors == 1
        assert recorder.counter("watch.stat_errors") == 1
        import json

        with open(log_path, "r", encoding="utf-8") as handle:
            [event] = [json.loads(line) for line in handle]
        assert event["event"] == "watch.stat_error"
        assert event["path"].endswith("guard.sh")
        assert event["level"] == "warning"
