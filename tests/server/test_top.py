"""The live ops console (``repro-top``) against a real daemon."""

import os
import threading
import time

import pytest

from repro.analysis.cache import ResultCache
from repro.cli import main_top
from repro.obs import TraceRecorder
from repro.server import AnalysisServer, ServerClient, ServerError, ServerUnavailable


@pytest.fixture()
def daemon(tmp_path):
    socket_path = str(tmp_path / "served.sock")
    server = AnalysisServer(
        socket_path=socket_path,
        jobs=1,
        cache=ResultCache(str(tmp_path / "cache")),
        recorder=TraceRecorder(),
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    deadline = time.monotonic() + 5.0
    while not os.path.exists(socket_path):
        if time.monotonic() > deadline:
            pytest.fail("daemon socket never appeared")
        time.sleep(0.01)
    yield server
    if thread.is_alive():
        try:
            ServerClient(socket_path).shutdown()
        except (ServerUnavailable, ServerError):
            pass
        thread.join(timeout=5.0)


def test_once_renders_a_dashboard_frame(daemon, capsys):
    client = ServerClient(daemon.socket_path)
    client.analyze_source("echo top-frame\n")
    client.analyze_source("echo top-frame\n")  # warm: a cache hit
    code = main_top(["--socket", daemon.socket_path, "--once"])
    assert code == 0
    out = capsys.readouterr().out
    assert "repro-top" in out
    assert "requests" in out
    assert "cache" in out
    assert "analyze" in out  # per-op latency row
    assert "p95" in out
    assert "\x1b[2J" not in out  # --once never clears the screen


def test_metrics_flag_dumps_prometheus_text(daemon, capsys):
    ServerClient(daemon.socket_path).ping()
    code = main_top(["--socket", daemon.socket_path, "--metrics"])
    assert code == 0
    out = capsys.readouterr().out
    assert "repro_server_requests_total" in out
    assert "repro_server_uptime_seconds" in out


def test_once_fails_cleanly_without_a_daemon(tmp_path, capsys):
    code = main_top(["--socket", str(tmp_path / "nothing.sock"), "--once"])
    assert code == 1
    assert "repro-top" in capsys.readouterr().err


def test_frame_shows_instantaneous_rates():
    from repro.cli import _render_top_frame

    stats = {
        "pid": 42,
        "version": "0.1.0",
        "protocol": 1,
        "uptime_s": 10.0,
        "requests": 20,
        "request_rate_rps": 2.0,
        "inflight": 1,
        "max_inflight": 64,
        "errors": 0,
        "shed": 0,
        "slow_ms": 1000.0,
        "slow_requests": 0,
        "budget_clamps": 0,
        "cache_hit_rate": 0.75,
        "cache_hits": 3,
        "cache_misses": 1,
        "jobs": 4,
        "pool_alive": True,
        "watch_rounds": 0,
        "watch_stat_errors": 0,
        "latency_ms": {
            "analyze": {
                "count": 3,
                "mean_ms": 2.0,
                "p50_ms": 1.0,
                "p95_ms": 4.0,
                "p99_ms": 5.0,
                "max_ms": 6.0,
            }
        },
        "metrics": {"counters": {"server.requests": 20}, "histograms": {}},
    }
    previous = ({"server.requests": 10}, 0.0, 5.0)  # 10 requests in 5s
    frame = _render_top_frame(stats, previous)
    assert "20 (2.0/s)" in frame
    assert "75.0% hit" in frame
    assert "analyze" in frame and "4.0ms" in frame
