"""The CI fuzz-smoke harness: generated scripts through the analyzer.

Asserts the resilience invariant — *``analyze()`` never raises and
always returns a renderable report* — over a fixed, seed-determined
corpus.  No wall-clock deadline is used, so the reports themselves are
deterministic too.

Runnable standalone (what the ``fuzz-smoke`` CI job does)::

    PYTHONPATH=src python tests/robustness/fuzz_smoke.py --iterations 300

Exit code 0 when every seed upholds the invariant, 1 otherwise.
"""

from __future__ import annotations

import argparse
import sys
import traceback
from typing import List, Tuple

try:
    from .script_gen import generate
except ImportError:  # run as a script, not a package member
    from script_gen import generate

from repro.analysis import Report, analyze
from repro.analysis.resilience import ResourceBudget


def smoke_budget() -> ResourceBudget:
    """Per-seed limits: generated scripts lean on globs and loops whose
    per-step automaton work is expensive, so the wall-clock deadline is
    what keeps total harness time bounded; the state/DFA caps catch
    state-space bugs even on fast machines."""
    return ResourceBudget(deadline=0.25, max_states=5_000, max_dfa_states=20_000)


def check_seed(seed: int) -> Tuple[bool, str, "Report"]:
    """Run one seed; (ok, failure description, report-or-None)."""
    source = generate(seed)
    try:
        report = analyze(
            source,
            include_lint=(seed % 3 == 0),
            budget=smoke_budget(),
        )
    except BaseException:
        return False, f"seed {seed}: analyze() raised\n{traceback.format_exc()}", None
    if not isinstance(report, Report):
        return False, f"seed {seed}: analyze() returned {type(report).__name__}", None
    try:
        rendered = report.render()
    except BaseException:
        return False, f"seed {seed}: render() raised\n{traceback.format_exc()}", report
    if not isinstance(rendered, str) or not rendered:
        return False, f"seed {seed}: unrenderable report", report
    return True, "", report


def run(iterations: int, verbose: bool = False) -> List[str]:
    """All failure descriptions over ``iterations`` seeds (empty = pass)."""
    failures: List[str] = []
    degraded = syntax_errors = 0
    for seed in range(iterations):
        ok, failure, report = check_seed(seed)
        if not ok:
            failures.append(failure)
            continue
        if report.degraded:
            degraded += 1
        if report.has("syntax-error"):
            syntax_errors += 1
    if verbose:
        print(
            f"fuzz-smoke: {iterations} seed(s), {syntax_errors} syntax-error "
            f"report(s), {degraded} degraded, {len(failures)} invariant "
            f"violation(s)"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--iterations", type=int, default=300)
    options = parser.parse_args(argv)
    failures = run(options.iterations, verbose=True)
    for failure in failures:
        print(failure, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
