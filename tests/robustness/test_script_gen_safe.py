"""Safe-mode generation: sandbox-confined, deterministic, executable."""

import subprocess

from repro.shell.parser import parse

from .script_gen import (
    SAFE_COMMANDS,
    SAFE_FIXTURES,
    SAFE_PREAMBLE,
    SAFE_WORDS,
    ScriptGen,
    generate,
)

SEEDS = range(120)


class TestSafeDeterminism:
    def test_byte_identical_per_seed(self):
        for seed in (0, 1, 7, 99):
            assert generate(seed, safe=True) == generate(seed, safe=True)

    def test_safe_and_fuzz_modes_differ(self):
        assert generate(5, safe=True) != generate(5)

    def test_seeds_diverse(self):
        assert len({generate(s, safe=True) for s in range(30)}) > 15


class TestSafeConfinement:
    def test_no_hostile_tokens(self):
        for seed in SEEDS:
            text = generate(seed, safe=True)
            for token in ("$HOME", "/tmp/", "..", "frobnicate", "uname"):
                assert token not in text, (seed, token)

    def test_no_absolute_path_words(self):
        for word in SAFE_WORDS:
            assert not word.startswith("/")

    def test_always_parses(self):
        # mutation pass is disabled: safe scripts are always well-formed
        for seed in SEEDS:
            parse(generate(seed, safe=True))

    def test_preamble_covers_all_interpolated_names(self):
        assigned = {line.split("=")[0] for line in SAFE_PREAMBLE}
        from .script_gen import NAMES

        assert assigned == set(NAMES)

    def test_while_loops_terminate(self):
        # safe while-loops only test `absent.flag`, which no fixture
        # creates and no generated word references
        assert "absent.flag" not in SAFE_WORDS
        assert "absent.flag" not in SAFE_FIXTURES
        for seed in SEEDS:
            text = generate(seed, safe=True)
            for line in text.splitlines():
                if line.startswith("while [ -e "):
                    assert line == "while [ -e absent.flag ]; do", line


class TestSafeExecution:
    def test_runs_under_real_sh(self, tmp_path):
        """A sample of safe scripts must complete quickly under /bin/sh
        with fixtures in place — the dynamic oracle's base requirement."""
        for seed in (0, 3, 11, 42):
            root = tmp_path / f"s{seed}"
            root.mkdir()
            for rel, content in SAFE_FIXTURES.items():
                target = root / rel
                if rel.endswith("/"):
                    target.mkdir(parents=True, exist_ok=True)
                else:
                    target.parent.mkdir(parents=True, exist_ok=True)
                    target.write_text(content)
            script = root / "script.sh"
            script.write_text(generate(seed, safe=True))
            proc = subprocess.run(
                ["/bin/sh", "script.sh", "data", "out.txt"],
                cwd=root,
                stdin=subprocess.DEVNULL,
                capture_output=True,
                timeout=10,
            )
            # any exit status is fine — it must merely terminate
            assert proc.returncode is not None
