"""Compatibility shim: the generator moved into the package so the
``repro-difftest`` campaign runner can use it after installation.

The grammar, safe mode, and fixtures all live in
:mod:`repro.analysis.difftest.gen`; this module re-exports the public
surface so existing ``tests.robustness.script_gen`` imports keep
working.
"""

from repro.analysis.difftest.gen import (  # noqa: F401
    COMMANDS,
    FLAGS,
    NAMES,
    OPTSTRINGS,
    PATTERNS,
    REDIRECTS,
    SAFE_ARGS,
    SAFE_COMMANDS,
    SAFE_FIXTURES,
    SAFE_PREAMBLE,
    SAFE_REDIRECTS,
    SAFE_WORDS,
    WORDS,
    ScriptGen,
    generate,
)
