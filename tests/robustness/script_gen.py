"""Deterministic grammar-based shell-script generator (ShellFuzzer-style).

Everything is driven by a seeded ``random.Random`` — same seed, same
script, no wall-clock or OS dependence — so fuzz failures reproduce
with just the seed number.  The grammar deliberately covers every
construct the parser and engine handle (pipelines, lists, redirects,
loops, case, subshells, command/arith substitution, here-strings via
quoting, background jobs) plus a mutation pass that damages otherwise
well-formed scripts to exercise the syntax-error and recovery paths.
"""

from __future__ import annotations

import random
from typing import List

NAMES = ["x", "dir", "target", "out", "tmp", "STEAMROOT", "i", "f"]
COMMANDS = [
    "echo", "rm", "mkdir", "cat", "grep", "mv", "cp", "touch",
    "ls", "sed", "head", "wc", "test", "frobnicate",
]
FLAGS = ["-r", "-f", "-rf", "-p", "-n", "-e", "--force", "-x"]
WORDS = [
    "file.txt", "/tmp/out", "$HOME/cache", '"$x"', "$1", "${dir}/sub",
    "log-*.txt", "'a b'", "data", "*", "..", "$(basename $0)", "-",
]
PATTERNS = ["*.txt", "a|b", "[0-9]*", "yes", "*"]
REDIRECTS = ["> /tmp/log", ">> out.txt", "2>/dev/null", "< file.txt", "2>&1"]
OPTSTRINGS = ["ab:c", "xy", "f:o:", ":q"]


class ScriptGen:
    """One seeded generator instance; :meth:`script` returns the text."""

    MAX_DEPTH = 3

    def __init__(self, seed: int):
        self.rng = random.Random(seed)

    # -- words ---------------------------------------------------------------

    def word(self) -> str:
        return self.rng.choice(WORDS)

    def simple(self) -> str:
        parts = [self.rng.choice(COMMANDS)]
        if self.rng.random() < 0.4:
            parts.append(self.rng.choice(FLAGS))
        parts.extend(self.word() for _ in range(self.rng.randint(0, 3)))
        if self.rng.random() < 0.25:
            parts.append(self.rng.choice(REDIRECTS))
        return " ".join(parts)

    def assignment(self) -> str:
        name = self.rng.choice(NAMES)
        if self.rng.random() < 0.3:
            return f"{name}=$({self.simple()})"
        return f"{name}={self.word()}"

    # -- statements ----------------------------------------------------------

    def statement(self, depth: int) -> str:
        choices = [
            lambda: self.simple(),
            lambda: self.assignment(),
            lambda: self.pipeline(),
            lambda: self.list_stmt(),
        ]
        if depth < self.MAX_DEPTH:
            choices += [
                lambda: self.if_stmt(depth),
                lambda: self.for_stmt(depth),
                lambda: self.while_stmt(depth),
                lambda: self.case_stmt(depth),
                lambda: self.subshell(depth),
                lambda: self.background(),
                lambda: self.getopts_loop(depth),
            ]
        return self.rng.choice(choices)()

    def pipeline(self) -> str:
        n = self.rng.randint(2, 3)
        return " | ".join(self.simple() for _ in range(n))

    def list_stmt(self) -> str:
        op = self.rng.choice([" && ", " || ", "; "])
        return op.join(self.simple() for _ in range(2))

    def if_stmt(self, depth: int) -> str:
        cond = self.rng.choice(
            [f"[ -f {self.word()} ]", f"[ -d {self.word()} ]", self.simple()]
        )
        body = self.block(depth + 1)
        if self.rng.random() < 0.5:
            other = self.block(depth + 1)
            return f"if {cond}; then\n{body}\nelse\n{other}\nfi"
        return f"if {cond}; then\n{body}\nfi"

    def for_stmt(self, depth: int) -> str:
        var = self.rng.choice(NAMES)
        items = " ".join(self.word() for _ in range(self.rng.randint(1, 4)))
        return f"for {var} in {items}; do\n{self.block(depth + 1)}\ndone"

    def while_stmt(self, depth: int) -> str:
        return (
            f"while [ -e {self.word()} ]; do\n{self.block(depth + 1)}\ndone"
        )

    def getopts_loop(self, depth: int) -> str:
        """An option-parsing loop (the classic script prologue)."""
        optstring = self.rng.choice(OPTSTRINGS)
        var = self.rng.choice(["opt", "flag", "o"])
        if self.rng.random() < 0.5:
            letters = [c for c in optstring if c != ":"]
            arms = "\n".join(
                f"    {letter}) {self.simple()} ;;" for letter in letters
            )
            body = (
                f'  case "${var}" in\n{arms}\n'
                f"    ?) exit 2 ;;\n  esac"
            )
        else:
            body = f"  {self.simple()}"
        return (
            f'while getopts "{optstring}" {var}; do\n{body}\ndone'
        )

    def argc_guard(self) -> str:
        """The ubiquitous argument-count prologue guard."""
        count = self.rng.randint(1, 3)
        op = self.rng.choice(["-lt", "-ne", "-gt"])
        action = self.rng.choice(
            ["exit 1", 'echo "usage: $0" >&2; exit 1', "shift"]
        )
        return f'if [ "$#" {op} {count} ]; then {action}; fi'

    def case_stmt(self, depth: int) -> str:
        subject = self.rng.choice(["$1", '"$1"', "$x", "$(uname)", '"$#"'])
        arms = []
        for _ in range(self.rng.randint(1, 3)):
            arms.append(
                f"  {self.rng.choice(PATTERNS)}) {self.simple()} ;;"
            )
        body = "\n".join(arms)
        return f"case {subject} in\n{body}\nesac"

    def subshell(self, depth: int) -> str:
        return f"({self.block(depth + 1)})"

    def background(self) -> str:
        return f"{self.simple()} &"

    def block(self, depth: int) -> str:
        n = self.rng.randint(1, 2)
        return "\n".join(self.statement(depth) for _ in range(n))

    # -- whole scripts -------------------------------------------------------

    def script(self) -> str:
        lines: List[str] = []
        if self.rng.random() < 0.5:
            lines.append("#!/bin/sh")
        if self.rng.random() < 0.3:
            # start like real scripts do: guard the argument count
            lines.append(self.argc_guard())
        for _ in range(self.rng.randint(2, 8)):
            lines.append(self.statement(0))
        text = "\n".join(lines) + "\n"
        if self.rng.random() < 0.2:
            text = self.mutate(text)
        return text

    def mutate(self, text: str) -> str:
        """Damage a well-formed script (truncation, bracket injection,
        quote removal) to exercise the error paths."""
        kind = self.rng.randrange(3)
        if kind == 0 and len(text) > 4:
            return text[: self.rng.randrange(1, len(text))]
        if kind == 1:
            pos = self.rng.randrange(len(text))
            return text[:pos] + self.rng.choice(")('\"`;|") + text[pos:]
        return text.replace('"', "", 1)


def generate(seed: int) -> str:
    """The script for one seed (deterministic)."""
    return ScriptGen(seed).script()
