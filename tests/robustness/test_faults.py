"""Fault injection: every crash class from the acceptance criteria —
checker crash, worker kill, parser depth bomb, regex blowup, deadline
expiry, corrupt cache — must yield a renderable report with a
degraded/internal-error/quarantine entry, never an uncaught exception,
and degraded results must be provably absent from the cache."""

import os

import pytest

from repro import cli
from repro.analysis import (
    BatchConfig,
    ResultCache,
    analyze,
    batch as batch_mod,
    run_batch,
)
from repro.analysis.resilience import (
    AnalysisBudgetExceeded,
    ResourceBudget,
    use_budget,
)
from repro.obs import TraceRecorder, use_recorder


def _pool_available() -> bool:
    import concurrent.futures as futures

    try:
        with futures.ProcessPoolExecutor(max_workers=1) as pool:
            return pool.submit(int, 1).result(timeout=60) == 1
    except Exception:
        return False


needs_pool = pytest.mark.skipif(
    not _pool_available(), reason="process pools unavailable in this sandbox"
)


def _kill_worker(item):
    """Stand-in pool worker simulating an OOM-kill/segfault: the process
    dies without unwinding, breaking the executor."""
    os._exit(137)


@pytest.fixture
def corpus(tmp_path):
    scripts = tmp_path / "scripts"
    scripts.mkdir()
    for index in range(4):
        (scripts / f"s{index}.sh").write_text(f"echo {index}\n")
    return scripts


class TestCheckerCrash:
    def test_default_checkers_are_isolated(self):
        from repro.analysis.resilience import GuardedChecker
        from repro.checkers import default_checkers

        assert all(
            isinstance(checker, GuardedChecker) for checker in default_checkers()
        )

    def test_crash_in_finish_hook(self):
        class FinishBomb:
            name = "finish-bomb"

            def finish(self, states):
                raise ZeroDivisionError("finish bug")

        from repro.analysis.resilience import guard_checkers

        report = analyze("echo hi", checkers=guard_checkers([FinishBomb()]))
        assert report.has("internal-error")
        report.render()


class TestWorkerDeath:
    @needs_pool
    def test_killed_workers_are_retried_inline(self, corpus, monkeypatch):
        monkeypatch.setattr(batch_mod, "_pool_worker", _kill_worker)
        recorder = TraceRecorder()
        with use_recorder(recorder):
            batch = run_batch([str(corpus)], jobs=2)
        # every file still has a real (retried-inline) result
        assert len(batch.results) == 4
        assert not any(r.quarantined for r in batch.results)
        assert not batch.degraded
        assert recorder.counter("batch.worker_failures") == 4
        assert recorder.counter("batch.retries") == 4
        clean = run_batch([str(corpus)], jobs=1)
        assert batch.render() == clean.render()

    @needs_pool
    def test_retry_failure_quarantines(self, corpus, tmp_path, monkeypatch):
        monkeypatch.setattr(batch_mod, "_pool_worker", _kill_worker)

        def exploding_analyze(*args, **kwargs):
            raise RuntimeError("retry also dies")

        monkeypatch.setattr(batch_mod, "analyze", exploding_analyze)
        cache = ResultCache(str(tmp_path / "cache"))
        recorder = TraceRecorder()
        with use_recorder(recorder):
            batch = run_batch([str(corpus)], jobs=2, cache=cache)
        assert all(r.quarantined for r in batch.results)
        assert batch.degraded
        assert recorder.counter("batch.quarantined") == 4
        for result in batch.results:
            assert result.report.has("analysis-quarantined")
            result.report.render()
        assert "4 file(s) degraded" in batch.render()
        # quarantined results were never cached: a later run re-analyzes
        assert recorder.counter("batch.cache.store") == 0
        monkeypatch.undo()
        recorder2 = TraceRecorder()
        with use_recorder(recorder2):
            recovered = run_batch([str(corpus)], jobs=1, cache=cache)
        assert recorder2.counter("batch.cache.hit") == 0
        assert recorder2.counter("symex.runs") == 4
        assert not recovered.degraded

    def test_inline_crash_does_not_abort_batch(self, corpus, monkeypatch):
        real_analyze_source = batch_mod.analyze_source

        def selective_bomb(source, config):
            if "echo 2" in source:
                raise MemoryError("inline crash")
            return real_analyze_source(source, config)

        monkeypatch.setattr(batch_mod, "analyze_source", selective_bomb)
        recorder = TraceRecorder()
        with use_recorder(recorder):
            batch = run_batch([str(corpus)], jobs=1)
        # the crashed file was retried (successfully); the rest untouched
        assert len(batch.results) == 4
        assert recorder.counter("batch.worker_failures") == 1
        assert recorder.counter("batch.retries") == 1
        assert not batch.degraded


class TestDegradedNeverCached:
    BRANCHY = "\n".join(
        f"if test -f /srv/f{i}; then echo {i}; fi" for i in range(30)
    )

    def test_budget_degraded_report_not_stored(self, tmp_path):
        scripts = tmp_path / "scripts"
        scripts.mkdir()
        (scripts / "big.sh").write_text(self.BRANCHY)
        cache = ResultCache(str(tmp_path / "cache"))
        config = BatchConfig(max_states=5)
        recorder = TraceRecorder()
        with use_recorder(recorder):
            first = run_batch([str(scripts)], config=config, jobs=1, cache=cache)
        assert first.degraded
        assert recorder.counter("batch.cache.store") == 0
        # cold rerun: still a miss, still re-analyzed
        recorder2 = TraceRecorder()
        with use_recorder(recorder2):
            run_batch([str(scripts)], config=config, jobs=1, cache=cache)
        assert recorder2.counter("batch.cache.miss") == 1
        assert recorder2.counter("batch.cache.hit") == 0
        # the file really was re-analyzed (and degraded again)
        assert recorder2.counter("analyze.degraded") == 1

    def test_completed_results_cached_across_budgets(self, tmp_path):
        # budget options are excluded from the fingerprint: a completed
        # report is budget-independent, so generous-budget runs can hit
        # entries stored by unbudgeted ones
        scripts = tmp_path / "scripts"
        scripts.mkdir()
        (scripts / "ok.sh").write_text("echo hi\n")
        cache = ResultCache(str(tmp_path / "cache"))
        run_batch([str(scripts)], config=BatchConfig(), jobs=1, cache=cache)
        recorder = TraceRecorder()
        with use_recorder(recorder):
            run_batch(
                [str(scripts)],
                config=BatchConfig(timeout=60.0),
                jobs=1,
                cache=cache,
            )
        assert recorder.counter("batch.cache.hit") == 1


class TestBudgetFaults:
    def test_parser_depth_bomb_in_batch(self, tmp_path):
        scripts = tmp_path / "scripts"
        scripts.mkdir()
        (scripts / "bomb.sh").write_text("(" * 500 + "echo hi" + ")" * 500)
        (scripts / "ok.sh").write_text("echo hi\n")
        batch = run_batch([str(scripts)], jobs=1)
        bomb = [r for r in batch.results if "bomb" in r.path][0]
        assert bomb.report.degraded
        ok = [r for r in batch.results if "ok" in r.path][0]
        assert not ok.report.degraded
        batch.render()

    def test_regex_blowup_trips_dfa_budget(self):
        from repro.rlang import build_nfa, determinise, parse
        from repro.rlang.ops import intersection

        def dfa(pattern):
            return determinise(build_nfa(parse(pattern)))

        # built unbudgeted, intersected under a tiny budget: the product
        # grows multiplicatively and must stop long before the hard cap
        left = dfa("(a|b)*a(a|b)(a|b)(a|b)")
        right = dfa("(b|a)*b(a|b)(a|b)(a|b)")
        with use_budget(ResourceBudget(max_dfa_states=4)):
            with pytest.raises(AnalysisBudgetExceeded) as exc:
                intersection(left, right)
        assert exc.value.budget == "dfa-states"

    def test_determinisation_blowup_trips_budget(self):
        from repro.rlang import build_nfa, parse, determinise

        nfa = build_nfa(parse("(a|b)*a(a|b)(a|b)(a|b)(a|b)(a|b)"))
        with use_budget(ResourceBudget(max_dfa_states=8)):
            with pytest.raises(AnalysisBudgetExceeded) as exc:
                determinise(nfa)
        assert exc.value.budget == "dfa-states"

    def test_deadline_expiry_mid_symex(self):
        report = analyze(
            TestDegradedNeverCached.BRANCHY,
            budget=ResourceBudget(deadline=0.0),
        )
        assert report.degraded
        assert "deadline" in report.by_code("analysis-degraded")[0].message
        report.render()


class TestCorruptCacheFaults:
    def test_unwritable_cache_root_degrades_to_passthrough(self, corpus, tmp_path):
        # a *file* where the cache root should be: every makedirs/open
        # fails with OSError, which must degrade to miss + no store
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        cache = ResultCache(str(blocker))
        recorder = TraceRecorder()
        with use_recorder(recorder):
            batch = run_batch([str(corpus)], jobs=1, cache=cache)
        assert len(batch.results) == 4
        assert recorder.counter("batch.cache.miss") == 4
        assert recorder.counter("batch.cache.store") == 0
        assert not batch.degraded

    def test_entries_corrupted_after_store_are_misses(self, corpus, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        run_batch([str(corpus)], jobs=1, cache=cache)
        for dirpath, _, filenames in os.walk(cache.root):
            for name in filenames:
                with open(os.path.join(dirpath, name), "w") as handle:
                    handle.write('{"schema": 1, "diag')  # truncated JSON
        recorder = TraceRecorder()
        with use_recorder(recorder):
            batch = run_batch([str(corpus)], jobs=1, cache=cache)
        assert recorder.counter("batch.cache.hit") == 0
        assert recorder.counter("batch.cache.miss") == 4
        assert len(batch.results) == 4


class TestCliExitCodes:
    def run_tool(self, argv, capsys):
        code = cli.main_analyze(argv)
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_degraded_single_file_exits_3(self, tmp_path, capsys):
        script = tmp_path / "big.sh"
        script.write_text(TestDegradedNeverCached.BRANCHY)
        code, out, _ = self.run_tool(
            [str(script), "--max-states", "5"], capsys
        )
        assert code == 3
        assert "[degraded]" in out

    def test_degraded_batch_exits_3(self, tmp_path, capsys):
        scripts = tmp_path / "scripts"
        scripts.mkdir()
        (scripts / "big.sh").write_text(TestDegradedNeverCached.BRANCHY)
        (scripts / "ok.sh").write_text("echo hi\n")
        code, out, _ = self.run_tool(
            [str(scripts), "--max-states", "5", "--no-cache", "--jobs", "1"],
            capsys,
        )
        assert code == 3
        assert "file(s) degraded" in out

    def test_unsafe_dominates_degraded(self, tmp_path, capsys):
        scripts = tmp_path / "scripts"
        scripts.mkdir()
        (scripts / "big.sh").write_text(TestDegradedNeverCached.BRANCHY)
        (scripts / "bad.sh").write_text("rm -rf /\n")
        code, _, _ = self.run_tool(
            [str(scripts), "--max-states", "5", "--no-cache", "--jobs", "1"],
            capsys,
        )
        assert code == 1

    def test_clean_run_still_exits_0(self, tmp_path, capsys):
        script = tmp_path / "ok.sh"
        script.write_text("echo hi\n")
        code, _, _ = self.run_tool([str(script), "--timeout", "60"], capsys)
        assert code == 0
