"""Grammar-based fuzzing of the analyzer (pytest wrapper around the
seeded generator; the CI ``fuzz-smoke`` job runs the same harness
standalone for more iterations)."""

import pytest

from repro.analysis import Report, analyze, run_batch
from repro.analysis.resilience import ResourceBudget

from .fuzz_smoke import check_seed, run, smoke_budget
from .script_gen import generate


class TestGenerator:
    def test_deterministic(self):
        assert generate(42) == generate(42)

    def test_seeds_differ(self):
        scripts = {generate(seed) for seed in range(20)}
        assert len(scripts) > 10

    def test_covers_compound_constructs(self):
        corpus = "\n".join(generate(seed) for seed in range(100))
        for construct in ("if ", "for ", "while ", "case ", " | ", "$("):
            assert construct in corpus, f"generator never produced {construct!r}"

    def test_mutations_present(self):
        # some seeds must exercise the syntax-error path (budgeted: the
        # parse phase, where syntax errors surface, always completes)
        reports = [
            analyze(generate(seed), budget=smoke_budget()) for seed in range(60)
        ]
        assert any(r.has("syntax-error") for r in reports)
        assert any(not r.has("syntax-error") for r in reports)


class TestFuzzInvariant:
    def test_smoke_run_clean(self):
        assert run(iterations=40) == []

    @pytest.mark.parametrize("seed", range(0, 40, 7))
    def test_individual_seeds(self, seed):
        ok, failure, _ = check_seed(seed)
        assert ok, failure

    def test_tiny_budget_never_raises(self):
        # absurdly small budgets exercise every degradation path
        for seed in range(25):
            report = analyze(
                generate(seed),
                budget=ResourceBudget(max_states=3, max_dfa_states=4),
            )
            assert isinstance(report, Report)
            report.render()

    def test_generated_corpus_through_batch(self, tmp_path):
        from repro.analysis import BatchConfig

        corpus = tmp_path / "fuzz-corpus"
        corpus.mkdir()
        for seed in range(15):
            (corpus / f"s{seed:03d}.sh").write_text(generate(seed))
        config = BatchConfig(timeout=0.25, max_states=2_000)
        batch = run_batch([str(corpus)], config=config, jobs=1)
        assert len(batch.results) == 15
        batch.render()
