"""Unit tests for the specification IR: argv parsing, clause guards,
triple rendering, and the registry."""

import pytest

from repro.specs import (
    Absent,
    Clause,
    CommandSpec,
    Deletes,
    Exists,
    PathKind,
    Sel,
    SpecParseError,
    SpecRegistry,
    default_registry,
)


@pytest.fixture
def rm_spec():
    return default_registry().get("rm")


class TestArgvParsing:
    def test_flags_and_operands(self, rm_spec):
        inv = rm_spec.parse_argv(["rm", "-f", "-r", "a", "b"])
        assert inv.flags == frozenset({"-f", "-r"})
        assert inv.operands == [3, 4]

    def test_merged_flags(self, rm_spec):
        inv = rm_spec.parse_argv(["rm", "-fr", "x"])
        assert inv.flags == frozenset({"-f", "-r"})

    def test_double_dash_ends_options(self, rm_spec):
        inv = rm_spec.parse_argv(["rm", "--", "-f"])
        assert not inv.flags
        assert len(inv.operands) == 1

    def test_unknown_flag_rejected(self, rm_spec):
        with pytest.raises(SpecParseError):
            rm_spec.parse_argv(["rm", "-z", "x"])

    def test_long_options(self, rm_spec):
        inv = rm_spec.parse_argv(["rm", "--force", "x"])
        assert "--force" in inv.flags

    def test_unknown_long_option(self, rm_spec):
        with pytest.raises(SpecParseError):
            rm_spec.parse_argv(["rm", "--explode", "x"])

    def test_option_with_value(self):
        mkdir = default_registry().get("mkdir")
        inv = mkdir.parse_argv(["mkdir", "-m", "755", "dir"])
        assert inv.flag_values["-m"] == "755"
        assert len(inv.operands) == 1

    def test_attached_option_value(self):
        cut = default_registry().get("cut")
        inv = cut.parse_argv(["cut", "-d:", "-f", "1", "file"])
        assert inv.flag_values["-d"] == ":"
        assert inv.flag_values["-f"] == "1"

    def test_min_operands_enforced(self):
        mkdir = default_registry().get("mkdir")
        with pytest.raises(SpecParseError):
            mkdir.parse_argv(["mkdir"])

    def test_max_operands_enforced(self):
        sleep = default_registry().get("sleep")
        with pytest.raises(SpecParseError):
            sleep.parse_argv(["sleep", "1", "2"])

    def test_missing_option_value(self):
        mkdir = default_registry().get("mkdir")
        with pytest.raises(SpecParseError):
            mkdir.parse_argv(["mkdir", "-m"])


class TestClauses:
    def test_applicable_requires(self):
        clause = Clause(requires_flags=frozenset({"-r"}))
        assert clause.applicable(frozenset({"-r", "-f"}))
        assert not clause.applicable(frozenset({"-f"}))

    def test_applicable_forbids(self):
        clause = Clause(forbids_flags=frozenset({"-f"}))
        assert clause.applicable(frozenset())
        assert not clause.applicable(frozenset({"-f"}))

    def test_rm_clause_selection(self, rm_spec):
        with_rf = rm_spec.applicable_clauses(frozenset({"-r", "-f"}))
        notes = {c.note for c in with_rf}
        assert any("recursive" in n for n in notes)
        assert not any("without -r fails" in n for n in notes)

    def test_triple_rendering(self):
        clause = Clause(
            pre=(Exists(Sel.EACH, PathKind.ANY),),
            effects=(Deletes(Sel.EACH, recursive=True),),
            exit_code=0,
            requires_flags=frozenset({"-f", "-r"}),
        )
        triple = clause.triple("rm")
        assert "∃" in triple
        assert "rm -f -r $p" in triple
        assert "exit 0" in triple

    def test_absent_rendering(self):
        clause = Clause(pre=(Absent(Sel.EACH),), exit_code=1)
        assert "∄" in clause.triple("rm")


class TestRegistry:
    def test_default_registry_size(self):
        assert len(default_registry()) >= 35

    def test_no_replace(self):
        registry = SpecRegistry()
        registry.register(CommandSpec(name="x"))
        with pytest.raises(ValueError):
            registry.register(CommandSpec(name="x"), replace=False)

    def test_replace_allowed(self):
        registry = SpecRegistry()
        registry.register(CommandSpec(name="x", summary="one"))
        registry.register(CommandSpec(name="x", summary="two"))
        assert registry.get("x").summary == "two"

    def test_contains(self):
        assert "rm" in default_registry()
        assert "no-such-tool" not in default_registry()

    def test_platform_tables(self):
        sed = default_registry().get("sed")
        assert "-i" in sed.unsupported_flags_on("macos")
        assert "-i" not in sed.unsupported_flags_on("linux")
