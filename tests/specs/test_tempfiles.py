"""mktemp / trap specifications (tempfile-lifecycle idioms)."""

from repro.analysis import analyze
from repro.specs import default_registry


class TestSpecsRegistered:
    def test_mktemp_registered(self):
        spec = default_registry().get("mktemp")
        assert spec is not None
        assert spec.stdout is not None

    def test_trap_registered(self):
        spec = default_registry().get("trap")
        assert spec is not None
        # registration is effect-free on every clause
        assert all(not clause.effects for clause in spec.clauses)


class TestMktempIdiom:
    def test_rm_of_mktemp_output_is_safe(self):
        # the original bug: mktemp's output was fully unknown, so
        # `rm "$(mktemp)"` escalated to dangerous-deletion with witness /
        report = analyze('tmp=$(mktemp); rm "$tmp"')
        assert not report.has("dangerous-deletion")
        assert not report.has("unknown-command")

    def test_multiline_form(self):
        report = analyze('tmp=$(mktemp)\nrm -f "$tmp"\n')
        assert not report.has("dangerous-deletion")

    def test_mktemp_d_directory_cleanup(self):
        report = analyze('dir=$(mktemp -d)\nrm -rf "$dir"\n')
        assert not report.has("dangerous-deletion")

    def test_output_language_is_tmp_rooted(self):
        spec = default_registry().get("mktemp")
        line = spec.stdout.line
        assert line.matches("/tmp/tmp.AbC123")
        assert not line.matches("/")
        assert not line.matches("/etc/passwd")

    def test_unconstrained_rm_still_flagged(self):
        # the fix must not weaken the checker itself
        report = analyze("rm -rf /")
        assert report.has("dangerous-deletion")


class TestTrapIdiom:
    def test_trap_not_unknown(self):
        report = analyze('trap "echo done" EXIT')
        assert not report.has("unknown-command")

    def test_trap_cleanup_idiom(self):
        report = analyze(
            'tmp=$(mktemp)\ntrap \'rm -f "$tmp"\' EXIT\necho using "$tmp"\n'
        )
        assert not report.has("unknown-command")
        assert not report.has("dangerous-deletion")

    def test_trap_succeeds(self):
        from repro.symex import Engine

        result = Engine(checkers=[]).run_script('trap "true" INT TERM')
        assert result.states
        assert all(st.status == 0 for st in result.states)
